package check

import (
	"strings"
	"testing"

	"hetsort"
	"hetsort/internal/pdm"
)

// invariantByName fetches one registry entry for direct exercise.
func invariantByName(t *testing.T, name string) Invariant {
	t.Helper()
	for _, inv := range Registry() {
		if inv.Name == name {
			return inv
		}
	}
	t.Fatalf("no invariant %q in registry", name)
	return Invariant{}
}

func TestSelect(t *testing.T) {
	if got, want := len(Select("")), len(Registry()); got != want {
		t.Fatalf("empty filter selected %d invariants, want all %d", got, want)
	}
	// Substring semantics: "balance" also picks up hist-balance.
	got := Select("balance, step-io")
	if len(got) != 3 || got[0].Name != "balance" || got[1].Name != "hist-balance" || got[2].Name != "step-io" {
		names := make([]string, len(got))
		for i, inv := range got {
			names[i] = inv.Name
		}
		t.Fatalf("filter selected %v, want [balance hist-balance step-io]", names)
	}
	if got := Select("no-such-invariant"); len(got) != 0 {
		t.Fatalf("bogus filter selected %d invariants", len(got))
	}
}

// The synthetic-outcome tests feed hand-built violations straight into
// the invariant checks: the harness must have teeth independent of
// whether the sorter currently has bugs.

func TestSortedInvariantTeeth(t *testing.T) {
	inv := invariantByName(t, "sorted")
	o := &Outcome{
		Case: &Case{Name: "synthetic", Keys: []hetsort.Key{1, 2, 3}},
		Runs: []Run{{Label: "base", Output: []hetsort.Key{1, 3, 2}}},
	}
	if err := inv.Check(o); err == nil {
		t.Fatal("sorted invariant accepted a descending pair")
	}
}

func TestPermutationInvariantTeeth(t *testing.T) {
	inv := invariantByName(t, "permutation")
	c := &Case{Name: "synthetic", Keys: []hetsort.Key{5, 6, 7}}
	// Sorted, right length, wrong multiset.
	o := &Outcome{Case: c, Runs: []Run{{Label: "base", Output: []hetsort.Key{5, 6, 6}}}}
	if err := inv.Check(o); err == nil {
		t.Fatal("permutation invariant accepted a dropped key")
	}
	o = &Outcome{Case: c, Runs: []Run{{Label: "base", Output: []hetsort.Key{5, 6}}}}
	if err := inv.Check(o); err == nil {
		t.Fatal("permutation invariant accepted a short output")
	}
}

func TestEquivalenceInvariantTeeth(t *testing.T) {
	inv := invariantByName(t, "equivalence")
	o := &Outcome{
		Case: &Case{Name: "synthetic", Keys: []hetsort.Key{1, 2}},
		Runs: []Run{
			{Label: "base", Output: []hetsort.Key{1, 2}},
			{Label: "pipeline", Output: []hetsort.Key{1, 3}},
		},
	}
	err := inv.Check(o)
	if err == nil {
		t.Fatal("equivalence invariant accepted divergent outputs")
	}
	if !strings.Contains(err.Error(), "pipeline") {
		t.Fatalf("violation does not name the divergent run: %v", err)
	}
}

func TestBalanceInvariantTeeth(t *testing.T) {
	inv := invariantByName(t, "balance")
	keys := make([]hetsort.Key, 100)
	for i := range keys {
		keys[i] = hetsort.Key(i)
	}
	c := &Case{Name: "synthetic", Keys: keys, Config: hetsort.Config{Nodes: 2}}
	if inv.Applies != nil && !inv.Applies(c) {
		t.Fatal("balance should apply to 100 distinct keys on 2 homogeneous nodes")
	}
	// One node holding everything violates 2*share+maxdup = 2*50+1.
	rep := &hetsort.Report{PartitionSizes: []int64{200, 0}}
	o := &Outcome{Case: c, Runs: []Run{{Label: "base", Config: c.Config, Output: keys, Report: rep}}}
	if err := inv.Check(o); err == nil {
		t.Fatal("balance invariant accepted a partition of 2x+ the share")
	}
	// The boundary itself is legal.
	rep.PartitionSizes = []int64{101, 0}
	if err := inv.Check(o); err != nil {
		t.Fatalf("balance invariant rejected the exact Theorem-1 bound: %v", err)
	}
}

func TestHistBalanceInvariantTeeth(t *testing.T) {
	inv := invariantByName(t, "hist-balance")
	keys := make([]hetsort.Key, 100)
	for i := range keys {
		keys[i] = hetsort.Key(i)
	}
	c := &Case{Name: "synthetic", Keys: keys, Config: hetsort.Config{Nodes: 2}}
	if inv.Applies(c) {
		t.Fatal("hist-balance must not apply without the histogram strategy")
	}
	c.Config.PivotStrategy = hetsort.PivotHistogram
	if !inv.Applies(c) {
		t.Fatal("hist-balance should apply to the histogram strategy")
	}
	// share=50, default tol=max(1, 0.05*50)=2, maxdup=1, p=2:
	// bound = 50 + 2*(2+1) + 2 = 58 — far below Theorem 1's 101.
	rep := &hetsort.Report{PartitionSizes: []int64{59, 41}}
	o := &Outcome{Case: c, Runs: []Run{{Label: "base", Config: c.Config, Output: keys, Report: rep}}}
	if err := inv.Check(o); err == nil {
		t.Fatal("hist-balance accepted a partition outside the refinement band")
	}
	rep.PartitionSizes = []int64{58, 42}
	if err := inv.Check(o); err != nil {
		t.Fatalf("hist-balance rejected the exact bound: %v", err)
	}
	// A looser configured tolerance widens the band.
	c.Config.HistTolerance = 0.5 // tol = 25
	o.Runs[0].Config = c.Config
	rep.PartitionSizes = []int64{59, 41}
	if err := inv.Check(o); err != nil {
		t.Fatalf("hist-balance ignored the configured tolerance: %v", err)
	}
}

func TestStepIOInvariantTeeth(t *testing.T) {
	inv := invariantByName(t, "step-io")
	keys := make([]hetsort.Key, 1000)
	for i := range keys {
		keys[i] = hetsort.Key(i)
	}
	cfg := hetsort.Config{Nodes: 2, BlockKeys: 16, MemoryKeys: 256, Tapes: 4}
	c := &Case{Name: "synthetic", Keys: keys, Config: cfg}
	rep := &hetsort.Report{PartitionSizes: []int64{500, 500}}
	rep.StepIO[2] = []pdm.IOStats{{Reads: 1 << 30}, {}}
	o := &Outcome{Case: c, Runs: []Run{{Label: "base", Config: cfg, Output: keys, Report: rep}}}
	err := inv.Check(o)
	if err == nil {
		t.Fatal("step-io invariant accepted a billion-block partitioning pass")
	}
	if !strings.Contains(err.Error(), "3:partitioning") {
		t.Fatalf("violation does not name the step: %v", err)
	}
	// Resumed runs are exempt: recovery redoes committed work.
	o.Runs[0].Resumed = true
	if err := inv.Check(o); err != nil {
		t.Fatalf("step-io invariant applied to a resumed run: %v", err)
	}
	// Hierarchical runs are exempt too: multi-round redistribution
	// legitimately spends extra disk passes over the received data.
	o.Runs[0].Resumed = false
	o.Runs[0].Config.Topology = hetsort.TopologyTree
	if err := inv.Check(o); err != nil {
		t.Fatalf("step-io invariant applied to a hierarchical run: %v", err)
	}
}

// TestTopologyVariants checks the topology equivalence axis: a flat base
// fans out across tree radixes and the grid, a hierarchical base gets
// the flat reference run, and runsPerCase stays in sync with Execute.
func TestTopologyVariants(t *testing.T) {
	keys := make([]hetsort.Key, 900)
	for i := range keys {
		keys[i] = hetsort.Key(2654435761 * uint32(i))
	}
	cfg := hetsort.Config{Perf: []int{1, 1, 4, 4}}
	smallMachine(&cfg)
	c := &Case{Name: "topo", Keys: keys, Config: cfg}

	o := Execute(c, RunOptions{})
	labels := map[string]bool{}
	for i := range o.Runs {
		if o.Runs[i].Err != nil {
			t.Fatalf("run %q: %v", o.Runs[i].Label, o.Runs[i].Err)
		}
		labels[o.Runs[i].Label] = true
	}
	for _, want := range []string{"tree/r2", "grid", "tree/r4", "tree/r16"} {
		if !labels[want] {
			t.Errorf("flat base missing topology variant %q", want)
		}
	}
	if got, want := len(o.Runs), runsPerCase(c, RunOptions{}); got != want {
		t.Errorf("Execute produced %d runs, runsPerCase predicts %d", got, want)
	}
	if err := invariantByName(t, "equivalence").Check(o); err != nil {
		t.Errorf("topology equivalence violated: %v", err)
	}

	quick := RunOptions{QuickTopology: true}
	oq := Execute(c, quick)
	if got, want := len(oq.Runs), runsPerCase(c, quick); got != want {
		t.Errorf("quick Execute produced %d runs, runsPerCase predicts %d", got, want)
	}

	hc := &Case{Name: "topo-tree", Keys: keys, Config: cfg}
	hc.Config.Topology = hetsort.TopologyTree
	hc.Config.Radix = 2
	oh := Execute(hc, RunOptions{})
	flat := false
	for i := range oh.Runs {
		if oh.Runs[i].Err != nil {
			t.Fatalf("run %q: %v", oh.Runs[i].Label, oh.Runs[i].Err)
		}
		if oh.Runs[i].Label == "flat" {
			flat = true
		}
	}
	if !flat {
		t.Error("hierarchical base did not get a flat reference run")
	}
	if got, want := len(oh.Runs), runsPerCase(hc, RunOptions{}); got != want {
		t.Errorf("Execute produced %d runs for tree base, runsPerCase predicts %d", got, want)
	}
	if err := invariantByName(t, "equivalence").Check(oh); err != nil {
		t.Errorf("flat reference diverged from tree base: %v", err)
	}
}

func TestAttributionInvariantTeeth(t *testing.T) {
	inv := invariantByName(t, "attribution")
	rep := &hetsort.Report{
		NodeClocks:    []float64{10},
		NodeBreakdown: []hetsort.TimeBreakdown{{Compute: 4, Disk: 4, Idle: 1}}, // sums to 9, clock 10
	}
	o := &Outcome{
		Case: &Case{Name: "synthetic"},
		Runs: []Run{{Label: "base", Report: rep}},
	}
	if err := inv.Check(o); err == nil {
		t.Fatal("attribution invariant accepted a 1s hole in the clock")
	}
	rep.NodeBreakdown[0].Network = 1
	if err := inv.Check(o); err != nil {
		t.Fatalf("attribution invariant rejected an exact attribution: %v", err)
	}
	rep.NodeBreakdown[0] = hetsort.TimeBreakdown{Compute: 11, Idle: -1}
	if err := inv.Check(o); err == nil {
		t.Fatal("attribution invariant accepted negative idle time")
	}
}

func TestGenerateCaseDeterministic(t *testing.T) {
	a := GenerateCase(42, false)
	b := GenerateCase(42, false)
	if a.Name != b.Name || len(a.Keys) != len(b.Keys) {
		t.Fatalf("same seed produced different cases: %q (%d keys) vs %q (%d keys)",
			a.Name, len(a.Keys), b.Name, len(b.Keys))
	}
	for i := range a.Keys {
		if a.Keys[i] != b.Keys[i] {
			t.Fatalf("same seed produced different keys at %d", i)
		}
	}
	// Config contains slices; compare the rendered literal instead.
	if configLiteral(a.Config) != configLiteral(b.Config) {
		t.Fatalf("same seed produced different configs:\n%s\n%s",
			configLiteral(a.Config), configLiteral(b.Config))
	}
}

func TestCrashResumeVariant(t *testing.T) {
	keys := make([]hetsort.Key, 3000)
	for i := range keys {
		keys[i] = hetsort.Key(2654435761 * uint32(i))
	}
	c := &Case{
		Name: "crash-resume",
		Seed: 7,
		Keys: keys,
		Config: hetsort.Config{
			Perf: []int{1, 2}, BlockKeys: 16, MemoryKeys: 512, Tapes: 4, MessageKeys: 64,
		},
	}
	o := Execute(c, RunOptions{Scratch: t.TempDir()})
	var crash *Run
	for i := range o.Runs {
		if o.Runs[i].Resumed {
			crash = &o.Runs[i]
		}
	}
	if crash == nil {
		t.Fatal("no crash/resume run executed despite a scratch directory")
	}
	if crash.Err != nil {
		t.Fatalf("crash/resume run failed: %v", crash.Err)
	}
	if !equalKeys(crash.Output, o.Runs[0].Output) {
		t.Fatalf("resumed output differs from base at index %d", firstDiff(crash.Output, o.Runs[0].Output))
	}
}

func TestShrinkProducesMinimalRepro(t *testing.T) {
	// A config-level bug: Loads below 1 is rejected at cluster
	// construction, so every run errors.  The shrinker should strip all
	// keys (the failure does not depend on them) and keep the Loads
	// axis (zeroing it makes the case pass).
	keys := make([]hetsort.Key, 64)
	for i := range keys {
		keys[i] = hetsort.Key(i * 3)
	}
	c := &Case{
		Name: "bad-loads",
		Keys: keys,
		Config: hetsort.Config{
			Nodes: 2, Loads: []float64{0.5, 1.0},
			BlockKeys: 16, MemoryKeys: 256, Tapes: 4,
			// Irrelevant axes the shrinker should drop.
			Pipeline: true,
			Topology: hetsort.TopologyTree, Radix: 2,
		},
	}
	fails := Check(c, RunOptions{}, "error")
	if len(fails) == 0 {
		t.Fatal("invalid Loads did not fail the error invariant")
	}
	shrunk := Shrink(c, "error", RunOptions{}, 0)
	if len(shrunk.Keys) != 0 {
		t.Errorf("shrinker kept %d keys for a key-independent failure", len(shrunk.Keys))
	}
	if shrunk.Config.Loads == nil {
		t.Error("shrinker dropped the Loads axis that causes the failure")
	}
	if shrunk.Config.Pipeline {
		t.Error("shrinker kept the irrelevant Pipeline axis")
	}
	if shrunk.Config.Topology != "" || shrunk.Config.Radix != 0 {
		t.Errorf("shrinker kept the irrelevant topology axes (%q, r=%d)",
			shrunk.Config.Topology, shrunk.Config.Radix)
	}
	if re := Check(shrunk, RunOptions{}, "error"); len(re) == 0 {
		t.Fatal("shrunk case no longer fails")
	}
	repro := Repro(shrunk, "error", fails[0].Err)
	for _, want := range []string{"check.Recheck", "Loads:", "\"error\""} {
		if !strings.Contains(repro, want) {
			t.Errorf("repro missing %q:\n%s", want, repro)
		}
	}
}

func TestCornerCasesPass(t *testing.T) {
	for _, c := range CornerCases(true) {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for _, f := range Check(c, RunOptions{}, "") {
				t.Error(f)
			}
		})
	}
}

package diskio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync/atomic"
)

// RetryPolicy bounds the retry-with-backoff loop of a RetryFS.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure
	// (so an operation is tried at most MaxRetries+1 times).
	MaxRetries int
	// BackoffSec is the virtual-time delay charged before the first
	// retry; each further retry doubles it (bounded exponential
	// backoff).
	BackoffSec float64
	// Retryable, when non-nil, filters which errors are retried.  The
	// default retries everything except end-of-file, "file does not
	// exist" and "file already closed", which no amount of waiting will
	// fix.
	Retryable func(error) bool
}

// DefaultRetryPolicy is a sensible bounded policy for transient disk
// faults: 4 retries starting at 10 virtual milliseconds.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxRetries: 4, BackoffSec: 0.01}
}

func (p RetryPolicy) retryable(err error) bool {
	if p.Retryable != nil {
		return p.Retryable(err)
	}
	return err != io.EOF && err != io.ErrUnexpectedEOF &&
		!errors.Is(err, os.ErrNotExist) && !errors.Is(err, os.ErrClosed)
}

// RetryFS wraps another FS with a bounded retry-with-backoff policy, so
// transient faults (see FaultFS.FailCount) are absorbed instead of
// killing a multi-hour sort.  Backoff delays are reported through Wait
// so the simulated cluster can charge them to the node's virtual clock;
// Retries counts every re-attempt for tests and reports.
type RetryFS struct {
	Inner  FS
	Policy RetryPolicy
	// Wait, when non-nil, receives each backoff delay in virtual
	// seconds (e.g. cluster.Node.AdvanceClock).
	Wait func(sec float64)

	retries atomic.Int64
}

// NewRetryFS wraps inner with the policy; wait may be nil.
func NewRetryFS(inner FS, policy RetryPolicy, wait func(sec float64)) *RetryFS {
	return &RetryFS{Inner: inner, Policy: policy, Wait: wait}
}

// Retries returns the number of re-attempts performed so far.
func (r *RetryFS) Retries() int64 { return r.retries.Load() }

// do runs op, retrying per the policy.
func (r *RetryFS) do(op func() error) error {
	backoff := r.Policy.BackoffSec
	var err error
	for attempt := 0; ; attempt++ {
		err = op()
		if err == nil || attempt >= r.Policy.MaxRetries || !r.Policy.retryable(err) {
			return err
		}
		if r.Wait != nil && backoff > 0 {
			r.Wait(backoff)
		}
		backoff *= 2
		r.retries.Add(1)
	}
}

// Create implements FS.
func (r *RetryFS) Create(name string) (File, error) {
	var f File
	err := r.do(func() error {
		var e error
		f, e = r.Inner.Create(name)
		return e
	})
	if err != nil {
		return nil, fmt.Errorf("diskio: create %s (retries exhausted): %w", name, err)
	}
	return &retryFile{File: f, fs: r}, nil
}

// Open implements FS.
func (r *RetryFS) Open(name string) (File, error) {
	var f File
	err := r.do(func() error {
		var e error
		f, e = r.Inner.Open(name)
		return e
	})
	if err != nil {
		return nil, err
	}
	return &retryFile{File: f, fs: r}, nil
}

// Remove implements FS.
func (r *RetryFS) Remove(name string) error {
	return r.do(func() error { return r.Inner.Remove(name) })
}

// Rename implements FS.
func (r *RetryFS) Rename(oldName, newName string) error {
	return r.do(func() error { return r.Inner.Rename(oldName, newName) })
}

// Names implements FS.
func (r *RetryFS) Names() ([]string, error) { return r.Inner.Names() }

// retryFile retries the byte-level operations.  A failed Read/Write in
// this layer has had no side effect on the stream position (the fault
// layers fail before touching the file), so re-issuing it is safe.
type retryFile struct {
	File
	fs *RetryFS
}

func (f *retryFile) Read(p []byte) (int, error) {
	var n int
	err := f.fs.do(func() error {
		var e error
		n, e = f.File.Read(p)
		return e
	})
	return n, err
}

func (f *retryFile) Write(p []byte) (int, error) {
	var n int
	err := f.fs.do(func() error {
		var e error
		n, e = f.File.Write(p)
		return e
	})
	return n, err
}

func (f *retryFile) Seek(offset int64, whence int) (int64, error) {
	var n int64
	err := f.fs.do(func() error {
		var e error
		n, e = f.File.Seek(offset, whence)
		return e
	})
	return n, err
}

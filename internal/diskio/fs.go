// Package diskio provides the block-granular disk layer under the
// external sorts.  All reads and writes move whole blocks of B keys; the
// layer charges a pdm.Counter (I/O complexity accounting) and a Meter
// (virtual-time accounting for the simulated cluster) on every block.
//
// Files are reached through the FS interface so tests can substitute an
// in-memory filesystem or inject faults; production code uses DirFS,
// which stores key files under a per-node scratch directory exactly like
// the paper's per-node /work partitions.
package diskio

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the handle the sorters use: sequential read/write plus seek.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	// Name returns the name the file was created/opened with.
	Name() string
}

// FS creates, reopens and removes named files.  Implementations must be
// safe for concurrent use by different files; a single File handle is
// confined to one goroutine.
type FS interface {
	// Create makes (or truncates) the named file for writing.
	Create(name string) (File, error)
	// Open opens the named file for reading from the start.
	Open(name string) (File, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically moves oldName to newName, replacing any
	// existing file (no data blocks are moved, so no I/O is charged —
	// the sorts use it to finalize their output tape).
	Rename(oldName, newName string) error
	// Names returns the existing file names in lexical order (for
	// tests and cleanup).
	Names() ([]string, error)
}

// DirFS is an FS rooted at a directory on the real filesystem.
type DirFS struct {
	root string
}

// NewDirFS returns a DirFS rooted at dir, creating it if needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskio: creating root: %w", err)
	}
	return &DirFS{root: dir}, nil
}

// Root returns the directory backing the filesystem.
func (d *DirFS) Root() string { return d.root }

func (d *DirFS) path(name string) (string, error) {
	if name == "" || filepath.IsAbs(name) || name != filepath.Clean(name) ||
		name == ".." || len(name) >= 3 && name[:3] == ".."+string(filepath.Separator) {
		return "", fmt.Errorf("diskio: invalid file name %q", name)
	}
	return filepath.Join(d.root, name), nil
}

type osFile struct {
	*os.File
	name string
}

func (f *osFile) Name() string { return f.name }

// Create implements FS.
func (d *DirFS) Create(name string) (File, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	if dir := filepath.Dir(p); dir != d.root {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	f, err := os.Create(p)
	if err != nil {
		return nil, err
	}
	return &osFile{File: f, name: name}, nil
}

// Open implements FS.
func (d *DirFS) Open(name string) (File, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, err
	}
	return &osFile{File: f, name: name}, nil
}

// Remove implements FS.
func (d *DirFS) Remove(name string) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	return os.Remove(p)
}

// Rename implements FS.  After the rename, the parent directory (and
// the source's parent, when different) is fsynced: os.Rename alone only
// updates the directory in the page cache, so a crash right after an
// "atomic" manifest commit could lose the rename and resurrect the old
// manifest — exactly the torn-commit window the durable-replace
// protocol exists to close.  MemFS and the fault/retry wrappers need no
// equivalent (nothing outlives the process there), so directory
// durability is DirFS's job alone.
func (d *DirFS) Rename(oldName, newName string) error {
	op, err := d.path(oldName)
	if err != nil {
		return err
	}
	np, err := d.path(newName)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(np); dir != d.root {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.Rename(op, np); err != nil {
		return err
	}
	if err := SyncDir(filepath.Dir(np)); err != nil {
		return err
	}
	if od := filepath.Dir(op); od != filepath.Dir(np) {
		if err := SyncDir(od); err != nil {
			return err
		}
	}
	return nil
}

// SyncDir makes directory-entry changes (a rename, create or remove)
// durable by fsyncing the directory itself.  The storage backends and
// DirFS.Rename call it after every atomic-replace; it is a hook
// variable so tests can observe or stub the sync.
var SyncDir = func(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("diskio: opening directory for sync: %w", err)
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return fmt.Errorf("diskio: syncing directory %s: %w", dir, serr)
	}
	return cerr
}

// Names implements FS.
func (d *DirFS) Names() ([]string, error) {
	var names []string
	err := filepath.Walk(d.root, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			rel, rerr := filepath.Rel(d.root, p)
			if rerr != nil {
				return rerr
			}
			names = append(names, rel)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// MemFS is an in-memory FS for tests and fast benchmarks.  The zero
// value is not usable; call NewMemFS.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*[]byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string]*[]byte)} }

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	if name == "" {
		return nil, errors.New("diskio: empty file name")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	buf := new([]byte)
	m.files[name] = buf
	return &memFile{fs: m, name: name, buf: buf, writable: true}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("diskio: open %s: %w", name, os.ErrNotExist)
	}
	return &memFile{fs: m, name: name, buf: buf}, nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("diskio: remove %s: %w", name, os.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldName, newName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf, ok := m.files[oldName]
	if !ok {
		return fmt.Errorf("diskio: rename %s: %w", oldName, os.ErrNotExist)
	}
	if newName == "" {
		return errors.New("diskio: empty target name")
	}
	delete(m.files, oldName)
	m.files[newName] = buf
	return nil
}

// Names implements FS.
func (m *MemFS) Names() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// TotalBytes returns the sum of all file sizes (for tests asserting
// linear-space usage).
func (m *MemFS) TotalBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total int64
	for _, b := range m.files {
		total += int64(len(*b))
	}
	return total
}

type memFile struct {
	fs       *MemFS
	name     string
	buf      *[]byte
	off      int64
	writable bool
	closed   bool
}

func (f *memFile) Name() string { return f.name }

func (f *memFile) Read(p []byte) (int, error) {
	if f.closed {
		return 0, os.ErrClosed
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.off >= int64(len(*f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, (*f.buf)[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	if f.closed {
		return 0, os.ErrClosed
	}
	if !f.writable {
		return 0, errors.New("diskio: file opened read-only")
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	b := *f.buf
	end := f.off + int64(len(p))
	if end > int64(len(b)) {
		nb := make([]byte, end)
		copy(nb, b)
		b = nb
	}
	copy(b[f.off:end], p)
	*f.buf = b
	f.off = end
	return len(p), nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	if f.closed {
		return 0, os.ErrClosed
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = f.off
	case io.SeekEnd:
		base = int64(len(*f.buf))
	default:
		return 0, fmt.Errorf("diskio: bad whence %d", whence)
	}
	np := base + offset
	if np < 0 {
		return 0, errors.New("diskio: negative seek position")
	}
	f.off = np
	return np, nil
}

func (f *memFile) Close() error {
	f.closed = true
	return nil
}

package storage

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hetsort/internal/diskio"
)

// Dir is a Backend rooted at a directory on the real filesystem.  Put
// follows the durable-replace protocol (temp write, fsync, atomic
// rename, parent-directory sync — the same discipline as the checkpoint
// manifests), so a crash mid-Put can never surface a torn object.
type Dir struct {
	root string
}

// NewDir returns a Dir backend rooted at dir, creating it if needed.
func NewDir(dir string) (*Dir, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating root: %w", err)
	}
	return &Dir{root: dir}, nil
}

// Root returns the directory backing the store.
func (d *Dir) Root() string { return d.root }

func (d *Dir) path(name string) (string, error) {
	if err := ValidName(name); err != nil {
		return "", err
	}
	return filepath.Join(d.root, filepath.FromSlash(name)), nil
}

// Put implements Backend.
func (d *Dir) Put(name string, data []byte) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: put %s: %w", name, err)
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(p)+".tmp*")
	if err != nil {
		return fmt.Errorf("storage: put %s: %w", name, err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("storage: put %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("storage: put %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("storage: put %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("storage: put %s: %w", name, err)
	}
	if err := diskio.SyncDir(dir); err != nil {
		return fmt.Errorf("storage: put %s: %w", name, err)
	}
	return nil
}

// Get implements Backend.
func (d *Dir) Get(name string) ([]byte, error) {
	p, err := d.path(name)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("storage: get %s: %w", name, ErrNotExist)
	}
	return data, err
}

// Stat implements Backend.
func (d *Dir) Stat(name string) (int64, error) {
	p, err := d.path(name)
	if err != nil {
		return 0, err
	}
	st, err := os.Stat(p)
	if errors.Is(err, os.ErrNotExist) {
		return 0, fmt.Errorf("storage: stat %s: %w", name, ErrNotExist)
	}
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// List implements Backend.
func (d *Dir) List(prefix string) ([]string, error) {
	var names []string
	err := filepath.WalkDir(d.root, func(p string, e fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if e.IsDir() {
			return nil
		}
		rel, rerr := filepath.Rel(d.root, p)
		if rerr != nil {
			return rerr
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// Delete implements Backend.
func (d *Dir) Delete(name string) error {
	p, err := d.path(name)
	if err != nil {
		return err
	}
	err = os.Remove(p)
	if errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("storage: delete %s: %w", name, ErrNotExist)
	}
	return err
}

// FS implements Backend: the view is a diskio.DirFS over the prefix
// subdirectory, so node working files are ordinary files under the
// store root and every object-API call sees them too.
func (d *Dir) FS(prefix string) (diskio.FS, error) {
	if err := ValidName(prefix); err != nil {
		return nil, err
	}
	return diskio.NewDirFS(filepath.Join(d.root, filepath.FromSlash(prefix)))
}

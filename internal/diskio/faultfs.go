package diskio

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the sentinel returned by FaultFS when the configured
// operation budget is exhausted.
var ErrInjected = errors.New("diskio: injected fault")

// FaultFS wraps another FS and fails every file operation after a fixed
// number of successful byte-level operations, for exercising error paths
// in the sorters.  FailAfter counts Read/Write/Seek calls across all
// files opened through the wrapper.
type FaultFS struct {
	Inner FS
	// FailAfter is the number of file operations allowed before every
	// subsequent operation returns ErrInjected.  Zero fails
	// immediately; negative never fails.
	FailAfter int64

	ops atomic.Int64
}

// NewFaultFS wraps inner so that file operations start failing after n
// successful ones.
func NewFaultFS(inner FS, n int64) *FaultFS {
	return &FaultFS{Inner: inner, FailAfter: n}
}

// Ops returns the number of operations observed so far.
func (f *FaultFS) Ops() int64 { return f.ops.Load() }

func (f *FaultFS) allow() error {
	if f.FailAfter < 0 {
		return nil
	}
	if f.ops.Add(1) > f.FailAfter {
		return ErrInjected
	}
	return nil
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	if err := f.allow(); err != nil {
		return nil, err
	}
	inner, err := f.Inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f}, nil
}

// Open implements FS.
func (f *FaultFS) Open(name string) (File, error) {
	if err := f.allow(); err != nil {
		return nil, err
	}
	inner, err := f.Inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: inner, fs: f}, nil
}

// Remove implements FS.
func (f *FaultFS) Remove(name string) error {
	if err := f.allow(); err != nil {
		return err
	}
	return f.Inner.Remove(name)
}

// Rename implements FS.
func (f *FaultFS) Rename(oldName, newName string) error {
	if err := f.allow(); err != nil {
		return err
	}
	return f.Inner.Rename(oldName, newName)
}

// Names implements FS.
func (f *FaultFS) Names() ([]string, error) { return f.Inner.Names() }

type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) Read(p []byte) (int, error) {
	if err := f.fs.allow(); err != nil {
		return 0, err
	}
	return f.File.Read(p)
}

func (f *faultFile) Write(p []byte) (int, error) {
	if err := f.fs.allow(); err != nil {
		return 0, err
	}
	return f.File.Write(p)
}

func (f *faultFile) Seek(offset int64, whence int) (int64, error) {
	if err := f.fs.allow(); err != nil {
		return 0, err
	}
	return f.File.Seek(offset, whence)
}

package polyphase

import (
	"fmt"
	"testing"

	"hetsort/internal/diskio"
	"hetsort/internal/record"
)

func BenchmarkSort(b *testing.B) {
	for _, n := range []int{1 << 14, 1 << 17} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			keys := record.Uniform.Generate(n, 1, 1)
			b.SetBytes(int64(n) * record.KeySize)
			for i := 0; i < b.N; i++ {
				fs := diskio.NewMemFS()
				if err := diskio.WriteFile(fs, "in", keys, 1024, diskio.Accounting{}); err != nil {
					b.Fatal(err)
				}
				cfg := Config{FS: fs, BlockKeys: 1024, MemoryKeys: 1 << 13, Tapes: 8,
					Acct: diskio.Accounting{}, TempPrefix: "b."}
				if _, err := Sort(cfg, "in", "out"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRunFormation(b *testing.B) {
	for _, rf := range []RunFormation{ReplacementSelection, LoadSort} {
		b.Run(rf.String(), func(b *testing.B) {
			keys := record.Uniform.Generate(1<<16, 1, 1)
			b.SetBytes(int64(len(keys)) * record.KeySize)
			fs := diskio.NewMemFS()
			if err := diskio.WriteFile(fs, "in", keys, 1024, diskio.Accounting{}); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				sink := &discardSink{}
				if _, _, err := formRuns(fs, "in", 1024, 1<<13, rf, diskio.Accounting{}, diskio.Overlap{}, sink); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

type discardSink struct{}

func (discardSink) beginRun() error       { return nil }
func (discardSink) emit(record.Key) error { return nil }
func (discardSink) endRun() error         { return nil }

func BenchmarkMergeFiles(b *testing.B) {
	fs := diskio.NewMemFS()
	var names []string
	for i := 0; i < 8; i++ {
		part := record.Sorted.Generate(1<<13, int64(i), 1)
		name := fmt.Sprintf("part%d", i)
		if err := diskio.WriteFile(fs, name, part, 1024, diskio.Accounting{}); err != nil {
			b.Fatal(err)
		}
		names = append(names, name)
	}
	b.SetBytes(8 << 13 * record.KeySize)
	cfg := Config{FS: fs, BlockKeys: 1024, MemoryKeys: 1 << 14, Tapes: 10,
		Acct: diskio.Accounting{}, TempPrefix: "b."}
	for i := 0; i < b.N; i++ {
		if err := MergeFiles(cfg, names, "merged"); err != nil {
			b.Fatal(err)
		}
	}
}

// Command hetsortd runs the multi-tenant sort service: a long-running
// daemon that accepts sort jobs over HTTP, admits them against the
// simulated machine's memory and disk budgets, runs up to -max-jobs of
// them concurrently on one shared virtual machine (tenants genuinely
// contend for disk bandwidth and link capacity), and anchors every
// completed job with a Merkle root over its artifacts.
//
// Serve:
//
//	hetsortd -addr :8080 -store dir:/var/lib/hetsortd -perf 1,1,4,4
//
// Verify a completed job offline (no daemon needed):
//
//	hetsortd verify -store dir:/var/lib/hetsortd job-0000
//
// Lint a scraped /metrics page against the Prometheus text exposition
// format (promtool-style; reads stdin when no file is given):
//
//	curl -s localhost:8080/metrics | hetsortd promlint
//
// The store is either a directory (dir:PATH) or the in-memory object
// store (mem, useful only for demos: state dies with the process).
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"hetsort"
	"hetsort/internal/metrics"
	"hetsort/internal/service"
	"hetsort/internal/storage"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "verify" {
		verifyMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "promlint" {
		promlintMain(os.Args[2:])
		return
	}
	serveMain(os.Args[1:])
}

// promlintMain validates a text-exposition page (file args or stdin)
// so CI can assert /metrics parses without carrying promtool.
func promlintMain(args []string) {
	lint := func(name string, data []byte) {
		if err := metrics.LintExposition(data); err != nil {
			fatal(fmt.Errorf("hetsortd: promlint %s: %w", name, err))
		}
		fmt.Printf("%s: valid Prometheus text exposition\n", name)
	}
	if len(args) == 0 {
		data, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		lint("stdin", data)
		return
	}
	for _, path := range args {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		lint(path, data)
	}
}

func openStore(spec string) (storage.Backend, error) {
	switch {
	case spec == "mem":
		return storage.NewObject(), nil
	case len(spec) > 4 && spec[:4] == "dir:":
		return storage.NewDir(spec[4:])
	default:
		return nil, fmt.Errorf("hetsortd: -store wants dir:PATH or mem, got %q", spec)
	}
}

func serveMain(args []string) {
	fs := flag.NewFlagSet("hetsortd", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8080", "HTTP listen address")
		store      = fs.String("store", "mem", "storage backend: dir:PATH or mem")
		perfStr    = fs.String("perf", "1,1,1,1", "machine perf vector (relative node speeds)")
		network    = fs.String("net", "fast-ethernet", "network model: fast-ethernet, myrinet, ideal")
		block      = fs.Int("block", 2048, "disk block size B in keys")
		maxJobs    = fs.Int("max-jobs", 2, "concurrently running jobs")
		maxQueue   = fs.Int("max-queue", 8, "queued jobs behind the running ones")
		memBudget  = fs.Int64("mem-budget", 256<<20, "machine memory budget in bytes for admission")
		diskBudget = fs.Int64("disk-budget", 4<<30, "machine disk budget in bytes for admission")
	)
	fs.Parse(args)

	perfV, err := hetsort.ParsePerf(*perfStr)
	if err != nil {
		fatal(err)
	}
	backend, err := openStore(*store)
	if err != nil {
		fatal(err)
	}
	svc, err := service.New(service.Config{
		Machine: service.MachineConfig{
			Perf:        perfV,
			Network:     *network,
			BlockKeys:   *block,
			MemoryBytes: *memBudget,
			DiskBytes:   *diskBudget,
		},
		MaxJobs:  *maxJobs,
		MaxQueue: *maxQueue,
	}, backend)
	if err != nil {
		fatal(err)
	}

	srv := &http.Server{Addr: *addr, Handler: svc.Handler()}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "hetsortd: shutting down (in-flight jobs stay resumable)")
		srv.Close()
	}()
	fmt.Printf("hetsortd: serving on %s (store %s, machine perf %v, %d slots + %d queue)\n",
		*addr, *store, perfV, *maxJobs, *maxQueue)
	err = srv.ListenAndServe()
	// Interrupt the running jobs; their durable status stays "running"
	// so the next daemon resumes them from their checkpoints.
	svc.Stop()
	if err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

func verifyMain(args []string) {
	fs := flag.NewFlagSet("hetsortd verify", flag.ExitOnError)
	store := fs.String("store", "", "storage backend: dir:PATH")
	fs.Parse(args)
	if *store == "" || fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hetsortd verify -store dir:PATH JOB-ID")
		os.Exit(2)
	}
	backend, err := openStore(*store)
	if err != nil {
		fatal(err)
	}
	id := fs.Arg(0)
	root, err := service.VerifyJob(backend, id)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: output sorted, merkle root verified: %s\n", id, root)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hetsortd:", err)
	os.Exit(1)
}

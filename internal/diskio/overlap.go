package diskio

import (
	"fmt"
	"io"

	"hetsort/internal/record"
	"hetsort/internal/vtime"
)

// This file is the overlapped-I/O layer: a prefetching reader and a
// write-behind writer that move block transfers off the consumer's
// critical path, the way the PDM's DisksPerNode parameter assumes a
// drive can transfer while the CPU merges.
//
// Two invariants shape the design:
//
//  1. PDM I/O *counts* are identical to the synchronous path.  All
//     accounting (pdm.Counter and vtime charges) happens on the
//     consumer goroutine, at the moment a block is handed over —
//     received from the prefetcher or enqueued to the drainer.  The
//     background goroutines touch only the File and the buffer pools.
//     A block the prefetcher read ahead but the consumer never took is
//     never charged, exactly as the synchronous Reader would never have
//     read it.  This also keeps the meters single-goroutine.
//
//  2. Only virtual *time* changes.  When the Accounting's Meter is a
//     vtime.OverlapMeter, the consumer-side charges go through
//     ChargeOverlappedIOBlocks inside a BeginOverlap/EndOverlap window
//     spanning the stream's lifetime, so disk time hides behind
//     concurrent compute up to the window's in-flight depth.  Any other
//     meter gets plain synchronous charges.
//
// Goroutine discipline: Release (reader) and Close (writer) join the
// background goroutine before returning, so the caller may close the
// underlying File immediately afterwards.

// Overlap configures the asynchronous I/O mode of the disk layer.
type Overlap struct {
	// Enabled turns on prefetch for readers and write-behind for
	// writers created through NewBlockReader/NewBlockWriter.
	Enabled bool
	// Depth is the number of blocks kept in flight per stream.  Zero
	// means "use the device's natural depth": the meter's disk count
	// when it exposes one (a node with D disks can keep D transfers in
	// flight), else 2.  Any value below 2 is raised to 2 (double
	// buffering is the minimum that overlaps anything).
	Depth int
}

// DepthFor resolves the effective in-flight depth for a stream charged
// to meter m: an explicit Depth wins; Depth == 0 asks the meter how many
// member disks it drives (cluster.Node exposes Disks()), so prefetch
// depth finally defaults to the node's DisksPerNode.
func (o Overlap) DepthFor(m vtime.Meter) int {
	d := o.Depth
	if d == 0 {
		if dp, ok := m.(interface{ Disks() int }); ok {
			d = dp.Disks()
		}
	}
	if d < 2 {
		d = 2
	}
	return d
}

// BlockReader is the consumer-side surface shared by the synchronous
// Reader and the PrefetchReader; polyphase's tapes and the merge kernel
// work against it.  Buffered/Discard/Fill satisfy polyphase.MergeSource.
type BlockReader interface {
	Buffered() []record.Key
	Discard(n int)
	Fill() error
	ReadKey() (record.Key, error)
	ReadKeys(dst []record.Key) (int, error)
	Release()
}

// BlockWriter is the producer-side surface shared by the synchronous
// Writer and the write-behind AsyncWriter.
type BlockWriter interface {
	WriteKeys(keys []record.Key) error
	WriteKey(k record.Key) error
	KeysWritten() int64
	Close() error
}

var (
	_ BlockReader = (*Reader)(nil)
	_ BlockReader = (*PrefetchReader)(nil)
	_ BlockWriter = (*Writer)(nil)
	_ BlockWriter = (*AsyncWriter)(nil)
)

// OverlapObserver is an optional extension of vtime.Meter: a meter that
// also implements it receives each overlapped stream's lifetime counters
// when the stream is released — blocks prefetched, prefetch hits
// (block was ready when the consumer asked) vs. stalls (consumer had to
// wait for the disk), write-behind blocks, and the write-behind queue's
// high-water mark.  cluster.Node implements it to feed the per-node
// metrics registry; the int64-only signature keeps this package free of
// a metrics dependency, mirroring polyphase.MergeObserver.
type OverlapObserver interface {
	ObserveOverlap(prefetched, hits, stalls, writeBehind, queueHighWater int64)
}

// NewBlockReader returns a PrefetchReader on f when o.Enabled, else the
// plain synchronous Reader.
func NewBlockReader(f File, blockKeys int, acct Accounting, o Overlap) BlockReader {
	if !o.Enabled {
		return NewReader(f, blockKeys, acct)
	}
	return NewPrefetchReader(f, blockKeys, acct, o.DepthFor(acct.Meter))
}

// NewBlockWriter returns a write-behind AsyncWriter on f when o.Enabled,
// else the plain synchronous Writer.
func NewBlockWriter(f File, blockKeys int, acct Accounting, o Overlap) BlockWriter {
	if !o.Enabled {
		return NewWriter(f, blockKeys, acct)
	}
	return NewAsyncWriter(f, blockKeys, acct, o.DepthFor(acct.Meter))
}

// readOverlapped charges one consumer-side handover of blocks read
// through the prefetcher: the PDM count is identical to a synchronous
// read; the time charge goes through the overlap window when the meter
// supports one.
func (a Accounting) readOverlapped(d int, blocks int64) {
	if a.Counter != nil {
		a.Counter.AddRead(blocks)
	}
	if c := a.disk(d); c != nil {
		c.AddRead(blocks)
	}
	if om, ok := a.Meter.(vtime.OverlapMeter); ok {
		om.ChargeOverlappedIOBlocks(blocks)
	} else if a.Meter != nil {
		a.Meter.ChargeIOBlocks(blocks)
	}
}

// writeOverlapped is readOverlapped's write-behind counterpart.
func (a Accounting) writeOverlapped(d int, blocks int64) {
	if a.Counter != nil {
		a.Counter.AddWrite(blocks)
	}
	if c := a.disk(d); c != nil {
		c.AddWrite(blocks)
	}
	if om, ok := a.Meter.(vtime.OverlapMeter); ok {
		om.ChargeOverlappedIOBlocks(blocks)
	} else if a.Meter != nil {
		a.Meter.ChargeIOBlocks(blocks)
	}
}

// overlapWindow opens an overlap window on the accounting's meter if it
// supports one, returning the close function (a no-op otherwise).
func (a Accounting) overlapWindow(depth int) func() {
	if om, ok := a.Meter.(vtime.OverlapMeter); ok {
		om.BeginOverlap(depth)
		return om.EndOverlap
	}
	return func() {}
}

// pfBlock is one unit of prefetcher→consumer handoff: a pooled byte
// buffer holding a whole (or final partial) block, or a terminal error.
type pfBlock struct {
	buf []byte
	err error
}

// PrefetchReader streams keys from a file like Reader, but a background
// goroutine reads blocks ahead of the consumer, keeping up to depth
// blocks in flight.  All accounting happens on the consumer goroutine
// (see the file comment); Release joins the background goroutine, so the
// file may be closed right after.
type PrefetchReader struct {
	acct     Accounting
	placed   Placed // non-nil when the file knows its disk placement
	off      int64  // consumer-side byte offset of the next block taken
	block    int
	ch       chan pfBlock  // depth-1 buffered; +1 in the producer's hands = depth in flight
	quit     chan struct{} // closed by Release to stop the producer
	done     chan struct{} // closed by the producer on exit
	endWin   func()
	keys     []record.Key
	pos      int
	err      error
	released bool

	fetched int64 // blocks handed to the consumer (== blocks charged)
	unread  int64 // blocks read ahead but never consumed (never charged)
	hits    int64 // fills served without waiting
	stalls  int64 // fills that had to wait for the disk
}

// NewPrefetchReader returns a PrefetchReader on f keeping up to depth
// blocks in flight (minimum 2, double buffering).
func NewPrefetchReader(f File, blockKeys int, acct Accounting, depth int) *PrefetchReader {
	if blockKeys <= 0 {
		panic("diskio: block size must be positive")
	}
	if depth < 2 {
		depth = 2
	}
	r := &PrefetchReader{
		acct:   acct,
		block:  blockKeys,
		ch:     make(chan pfBlock, depth-1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
		endWin: acct.overlapWindow(depth),
		keys:   getKeyBuf(blockKeys),
	}
	// Capture placement before the producer takes the handle: blocks
	// arrive in file order, so the consumer can attribute each one to
	// its member disk from the running offset alone (DiskAt is a pure
	// function of the offset, safe alongside the producer's reads).
	r.placed, r.off = placement(f)
	go r.produce(f)
	return r
}

// produce runs on the background goroutine.  It touches only f and the
// buffer pools — never the accounting — and always either sends a
// terminal pfBlock before exiting or exits on quit.
func (r *PrefetchReader) produce(f File) {
	defer close(r.done)
	for {
		select {
		case <-r.quit:
			return
		default:
		}
		buf := getByteBuf(r.block * record.KeySize)
		n, err := io.ReadFull(f, buf)
		if n > 0 {
			blk := pfBlock{buf: buf[:n]}
			if n%record.KeySize != 0 {
				putByteBuf(buf)
				blk = pfBlock{err: fmt.Errorf("diskio: truncated key at end of %s", f.Name())}
			}
			select {
			case r.ch <- blk:
			case <-r.quit:
				if blk.buf != nil {
					putByteBuf(blk.buf)
				}
				return
			}
			if blk.err != nil {
				return
			}
			continue
		}
		putByteBuf(buf)
		if err == io.ErrUnexpectedEOF || err == nil {
			err = io.EOF
		}
		select {
		case r.ch <- pfBlock{err: err}:
		case <-r.quit:
		}
		return
	}
}

func (r *PrefetchReader) fill() error {
	if r.err != nil {
		return r.err
	}
	var blk pfBlock
	select {
	case blk = <-r.ch:
		r.hits++
	default:
		r.stalls++
		blk = <-r.ch // the producer always sends a terminal block before exiting
	}
	if blk.err != nil {
		r.err = blk.err
		return r.err
	}
	r.fetched++
	d := 0
	if r.placed != nil {
		d = r.placed.DiskAt(r.off)
	}
	r.off += int64(len(blk.buf))
	r.acct.readOverlapped(d, 1)
	r.keys = record.DecodeKeys(r.keys[:0], blk.buf)
	putByteBuf(blk.buf)
	r.pos = 0
	return nil
}

// Buffered returns the keys decoded but not yet consumed.
func (r *PrefetchReader) Buffered() []record.Key { return r.keys[r.pos:] }

// Discard consumes the first n buffered keys.
func (r *PrefetchReader) Discard(n int) { r.pos += n }

// Fill decodes the next block once the buffer is empty; io.EOF when the
// file is exhausted.
func (r *PrefetchReader) Fill() error {
	if r.pos < len(r.keys) {
		return nil
	}
	return r.fill()
}

// ReadKey returns the next key, or io.EOF when the stream is exhausted.
func (r *PrefetchReader) ReadKey() (record.Key, error) {
	if r.pos >= len(r.keys) {
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	k := r.keys[r.pos]
	r.pos++
	return k, nil
}

// ReadKeys fills dst with up to len(dst) keys and returns how many were
// read; io.EOF only with n==0 once exhausted.
func (r *PrefetchReader) ReadKeys(dst []record.Key) (int, error) {
	n := 0
	for n < len(dst) {
		if r.pos >= len(r.keys) {
			if err := r.fill(); err != nil {
				if n > 0 && err == io.EOF {
					return n, nil
				}
				return n, err
			}
		}
		c := copy(dst[n:], r.keys[r.pos:])
		r.pos += c
		n += c
	}
	return n, nil
}

// Release stops and joins the producer goroutine, recycles the buffers,
// closes the overlap window and reports the stream's counters to the
// meter's OverlapObserver (if any).  The underlying file may be closed
// as soon as Release returns.  Release is idempotent; further reads fail
// cleanly.
func (r *PrefetchReader) Release() {
	if r.released {
		return
	}
	r.released = true
	close(r.quit)
	// Drain until the producer has exited: it may be blocked mid-send.
drain:
	for {
		select {
		case blk := <-r.ch:
			r.recycle(blk)
		case <-r.done:
			break drain
		}
	}
	for {
		select {
		case blk := <-r.ch:
			r.recycle(blk)
		default:
			putKeyBuf(r.keys)
			r.keys, r.pos = nil, 0
			if r.err == nil {
				r.err = fmt.Errorf("diskio: read on released PrefetchReader")
			}
			r.endWin()
			if obs, ok := r.acct.Meter.(OverlapObserver); ok {
				obs.ObserveOverlap(r.fetched+r.unread, r.hits, r.stalls, 0, 0)
			}
			return
		}
	}
}

func (r *PrefetchReader) recycle(blk pfBlock) {
	if blk.buf != nil {
		putByteBuf(blk.buf)
		r.unread++
	}
}

// AsyncWriter streams keys to a file like Writer, but flushed blocks are
// handed to a background drainer instead of blocking WriteKeys; up to
// depth blocks are in flight (the handoff applies backpressure beyond
// that).  Accounting happens on the consumer goroutine at handoff time,
// so PDM counts match the synchronous Writer exactly.  Close joins the
// drainer before returning, so the file may be closed right after; a
// write error from the drainer surfaces at Close (later blocks are
// drained and discarded so the consumer never deadlocks).
type AsyncWriter struct {
	acct   Accounting
	placed Placed // non-nil when the file knows its disk placement
	off    int64  // consumer-side byte offset of the next block handed off
	block  int
	ch     chan []byte   // depth-1 buffered; +1 in the drainer's hands = depth in flight
	done   chan struct{} // closed by the drainer on exit
	werr   error         // drainer-side write error; read only after <-done
	endWin func()
	buf    []byte
	n      int
	total  int64
	closed bool
	err    error

	wrote int64 // blocks handed to the drainer (== blocks charged)
	hwm   int64 // worst queue depth observed at handoff
}

// NewAsyncWriter returns a write-behind writer on f keeping up to depth
// blocks in flight (minimum 2).
func NewAsyncWriter(f File, blockKeys int, acct Accounting, depth int) *AsyncWriter {
	if blockKeys <= 0 {
		panic("diskio: block size must be positive")
	}
	if depth < 2 {
		depth = 2
	}
	w := &AsyncWriter{
		acct:   acct,
		block:  blockKeys,
		ch:     make(chan []byte, depth-1),
		done:   make(chan struct{}),
		endWin: acct.overlapWindow(depth),
		buf:    getByteBuf(blockKeys * record.KeySize)[:0],
	}
	// Capture placement before the drainer takes the handle; the
	// consumer attributes each handed-off block from its own offset.
	w.placed, w.off = placement(f)
	go w.drain(f)
	return w
}

// drain runs on the background goroutine: it writes each handed-off
// block to f and recycles the buffer.  After the first write error it
// keeps receiving (and discarding) so the consumer never blocks forever.
func (w *AsyncWriter) drain(f File) {
	defer close(w.done)
	for buf := range w.ch {
		if w.werr == nil {
			if _, err := f.Write(buf); err != nil {
				w.werr = fmt.Errorf("diskio: writing block: %w", err)
			}
		}
		putByteBuf(buf)
	}
}

// WriteKeys appends keys to the stream.
func (w *AsyncWriter) WriteKeys(keys []record.Key) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return errWriterClosed
	}
	for len(keys) > 0 {
		room := w.block - w.n
		take := len(keys)
		if take > room {
			take = room
		}
		w.buf = record.EncodeKeys(w.buf, keys[:take])
		w.n += take
		w.total += int64(take)
		keys = keys[take:]
		if w.n == w.block {
			w.flushBlock()
		}
	}
	return nil
}

// WriteKey appends a single key.
func (w *AsyncWriter) WriteKey(k record.Key) error {
	return w.WriteKeys([]record.Key{k})
}

// flushBlock hands the current block to the drainer (blocking when depth
// blocks are already in flight) and charges one block write.
func (w *AsyncWriter) flushBlock() {
	if w.n == 0 {
		return
	}
	if q := int64(len(w.ch)) + 1; q > w.hwm {
		w.hwm = q
	}
	d := 0
	if w.placed != nil {
		d = w.placed.DiskAt(w.off)
	}
	w.off += int64(len(w.buf))
	w.ch <- w.buf
	w.wrote++
	w.acct.writeOverlapped(d, 1)
	w.buf = getByteBuf(w.block * record.KeySize)[:0]
	w.n = 0
}

// KeysWritten returns the number of keys accepted so far.
func (w *AsyncWriter) KeysWritten() int64 { return w.total }

// Close flushes the final partial block, joins the drainer, recycles the
// buffers, closes the overlap window and reports the stream's counters
// to the meter's OverlapObserver (if any).  It does not close the
// underlying file handle; the caller owns it and may close it as soon as
// Close returns.  Close is idempotent.
func (w *AsyncWriter) Close() error {
	if w.closed {
		return w.err
	}
	w.flushBlock()
	w.closed = true
	close(w.ch)
	<-w.done
	if w.err == nil {
		w.err = w.werr
	}
	putByteBuf(w.buf)
	w.buf = nil
	w.endWin()
	if obs, ok := w.acct.Meter.(OverlapObserver); ok {
		obs.ObserveOverlap(0, 0, 0, w.wrote, w.hwm)
	}
	return w.err
}

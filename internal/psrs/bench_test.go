package psrs

import (
	"testing"

	"hetsort/internal/cluster"
	"hetsort/internal/perf"
	"hetsort/internal/record"
)

func benchPortions(v perf.Vector, n int) [][]record.Key {
	keys := record.Uniform.Generate(n, 1, len(v))
	shares := v.Shares(int64(n))
	out := make([][]record.Key, len(v))
	off := int64(0)
	for i, s := range shares {
		out[i] = keys[off : off+s]
		off += s
	}
	return out
}

func BenchmarkInCoreSort(b *testing.B) {
	for _, strat := range []Strategy{RegularSampling, Overpartitioning, Quantiles} {
		b.Run(strat.String(), func(b *testing.B) {
			v := perf.Vector{1, 1, 4, 4}
			n := int(v.NearestValidSize(1 << 17))
			portions := benchPortions(v, n)
			b.SetBytes(int64(n) * record.KeySize)
			for i := 0; i < b.N; i++ {
				c, err := cluster.New(cluster.Config{Slowdowns: v.Slowdowns()})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Sort(c, Config{Perf: v, Strategy: strat, Seed: int64(i)}, portions); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Command hetsort sorts a binary file of little-endian uint32 values
// out of core on a simulated heterogeneous cluster.
//
// Usage:
//
//	hetsort -input data.u32 -output sorted.u32 -perf 1,1,4,4 -workdir /tmp/hetsort
//	hetsort -gen 16777220 -dist uniform -input data.u32        # generate an input file
//
// The perf vector expresses relative node speeds; data is distributed
// proportionally and the algorithm guarantees no node handles more than
// twice its share.  With -workdir the node disks are real directories;
// without it they live in memory.
package main

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"hetsort"
	"hetsort/internal/record"
	"hetsort/internal/trace"
)

func main() {
	var (
		input    = flag.String("input", "", "input file of little-endian uint32 values")
		output   = flag.String("output", "", "output file (sorted)")
		perfStr  = flag.String("perf", "1,1,1,1", "comma-separated perf vector (relative node speeds)")
		workdir  = flag.String("workdir", "", "directory for node disks (empty = in-memory)")
		block    = flag.Int("block", 2048, "disk block size B in keys")
		memory   = flag.Int("memory", 1<<16, "per-node memory M in keys")
		tapes    = flag.Int("tapes", 15, "polyphase merge file count")
		msg      = flag.Int("msg", 8192, "redistribution message size in keys")
		disks    = flag.Int("disks", 1, "PDM disks per node D: node files are striped over D member disks")
		diskAcc  = flag.String("disk-access", hetsort.DiskAccessStriped, "multi-disk scheduling model: striped, independent (timing only)")
		runForm  = flag.String("run-formation", hetsort.RunReplacementSelection, "initial run former: replacement-selection, load-sort, guidesort")
		network  = flag.String("net", hetsort.NetworkFastEthernet, "network model: fast-ethernet, myrinet, ideal")
		gen      = flag.Int64("gen", 0, "generate this many keys into -input instead of sorting")
		dist     = flag.String("dist", "uniform", "distribution for -gen (uniform, gaussian, zipf, sorted, reverse, nearly-sorted, bucket, staggered, heavy-dup, zipf-s2, staircase, sampler-killer)")
		seed     = flag.Int64("seed", 1, "seed for -gen")
		pivot    = flag.String("pivot", "", "pivot strategy: regular-sampling (default), overpartitioning, random-pivots, quantile-sketch, histogram")
		histTol  = flag.Float64("hist-tol", 0, "histogram refinement tolerance as a fraction of the smallest share (default 0.05; -pivot histogram only)")
		pipeline = flag.Bool("pipeline", false, "fuse steps 4+5: merge redistribution streams directly into the output")
		topology = flag.String("topology", "flat", "redistribution topology: flat, tree, grid (tree/grid bound per-node fan-in at large p)")
		radix    = flag.Int("radix", 0, "tree fan-in r for -topology tree (default 4)")
		overlap  = flag.Bool("overlap", false, "overlap disk I/O with compute: prefetch reads, write-behind writes (same I/O counts, lower virtual time)")
		verbose  = flag.Bool("v", false, "print the full per-step report")
		withGant = flag.Bool("trace", false, "print a virtual-time Gantt chart of the run")
		traceOut = flag.String("trace-out", "", "write a Chrome trace_event JSON of the run (load in Perfetto); implies tracing")
		evtsOut  = flag.String("events-out", "", "write the raw event stream as JSONL; implies tracing")
		metsOut  = flag.String("metrics-out", "", "write per-node metrics and the virtual-time attribution as JSON")
		validate = flag.String("validate-trace", "", "validate a trace_event JSON file written by -trace-out and exit")
		ckptDir  = flag.String("checkpoint-dir", "", "directory for node disks with durable phase checkpoints (implies -workdir)")
		resume   = flag.Bool("resume", false, "resume an interrupted checkpointed run from -checkpoint-dir")
		crash    = flag.String("crash", "", "inject a crash for testing, as node:phase (e.g. 2:4)")
		jsonFlag = flag.Bool("json", false, "print a machine-readable JSON result object (errors included) to stdout")
		progFlag = flag.Bool("progress", false, "repaint a live per-node progress table on stderr while sorting, then print the straggler analysis")
	)
	flag.Parse()
	jsonMode = *jsonFlag

	if *validate != "" {
		data, err := os.ReadFile(*validate)
		if err != nil {
			fatal(err)
		}
		if err := trace.ValidateChromeTrace(data); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: valid Chrome trace_event JSON\n", *validate)
		return
	}

	perfV, err := hetsort.ParsePerf(*perfStr)
	if err != nil {
		fatal(err)
	}

	if *gen > 0 {
		if *input == "" {
			fatal(fmt.Errorf("-gen requires -input"))
		}
		if err := generate(*input, *gen, *dist, *seed, len(perfV)); err != nil {
			fatal(err)
		}
		fmt.Printf("generated %d %s keys into %s\n", *gen, *dist, *input)
		return
	}

	if *resume {
		if *ckptDir == "" {
			fatal(fmt.Errorf("-resume requires -checkpoint-dir"))
		}
		if *output == "" {
			fmt.Fprintln(os.Stderr, "usage: hetsort -resume -checkpoint-dir DIR -output OUT [flags]; see -h")
			os.Exit(2)
		}
	} else if *input == "" || *output == "" {
		fmt.Fprintln(os.Stderr, "usage: hetsort -input IN -output OUT [flags]; see -h")
		os.Exit(2)
	}
	cfg := hetsort.Config{
		Perf:          perfV,
		BlockKeys:     *block,
		MemoryKeys:    *memory,
		Tapes:         *tapes,
		MessageKeys:   *msg,
		Disks:         *disks,
		DiskAccess:    *diskAcc,
		RunFormation:  *runForm,
		Network:       *network,
		WorkDir:       *workdir,
		Trace:         *withGant || *traceOut != "" || *evtsOut != "",
		Pipeline:      *pipeline,
		Overlap:       *overlap,
		Topology:      *topology,
		Radix:         *radix,
		PivotStrategy: *pivot,
		HistTolerance: *histTol,
	}
	if *ckptDir != "" {
		cfg.WorkDir = *ckptDir
		cfg.Checkpoint.Enabled = true
	}
	if *crash != "" {
		var node, phase int
		if _, err := fmt.Sscanf(*crash, "%d:%d", &node, &phase); err != nil {
			fatal(fmt.Errorf("-crash wants node:phase, got %q", *crash))
		}
		cfg.Checkpoint.CrashNode = node
		cfg.Checkpoint.CrashPhase = phase
	}

	var rend *progressRenderer
	if *progFlag {
		tr := hetsort.NewProgressTracker()
		cfg.Progress = tr
		rend = startProgressRenderer(tr)
	}

	var rep *hetsort.Report
	if *resume {
		rep, err = hetsort.Resume(*output, cfg)
	} else {
		rep, err = hetsort.SortFile(*input, *output, cfg)
	}
	if rend != nil {
		rend.finish()
	}
	if err != nil {
		if hetsort.IsCrash(err) {
			if jsonMode {
				os.Stdout.Write(resultJSON(nil, err, *ckptDir))
			} else {
				fmt.Fprintf(os.Stderr, "hetsort: %v\nhetsort: checkpoints are intact; rerun with -resume -checkpoint-dir %s to continue\n", err, *ckptDir)
			}
			os.Exit(1)
		}
		fatal(err)
	}
	switch {
	case jsonMode:
		os.Stdout.Write(resultJSON(rep, nil, ""))
	case *verbose:
		fmt.Print(rep.String())
	default:
		fmt.Printf("sorted in %.3f virtual s; S(max)=%.4f; partitions=%v\n",
			rep.Time, rep.SublistExpansion, rep.PartitionSizes)
	}
	if *progFlag {
		if sr, serr := rep.Stragglers(); serr == nil {
			fmt.Fprint(os.Stderr, sr.String())
		}
	}
	if *withGant {
		fmt.Print(rep.Gantt)
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, rep, trace.WriteChromeTrace); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote Chrome trace to %s (load at ui.perfetto.dev)\n", *traceOut)
	}
	if *evtsOut != "" {
		if err := writeTrace(*evtsOut, rep, trace.WriteJSONL); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote event stream to %s\n", *evtsOut)
	}
	if *metsOut != "" {
		if err := writeMetrics(*metsOut, rep); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote metrics to %s\n", *metsOut)
	}
}

// writeTrace streams the report's raw event log through one of the
// trace exporters into path.
func writeTrace(path string, rep *hetsort.Report, export func(io.Writer, *trace.Log) error) error {
	if rep.TraceLog == nil {
		return fmt.Errorf("no trace recorded (internal error: tracing should be implied)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := export(w, rep.TraceLog); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeMetrics dumps the per-node registries and time attribution.
func writeMetrics(path string, rep *hetsort.Report) error {
	out := struct {
		Time          float64                 `json:"time"`
		NodeClocks    []float64               `json:"node_clocks"`
		NodeBreakdown []hetsort.TimeBreakdown `json:"node_breakdown"`
		NodeMetrics   []map[string]float64    `json:"node_metrics"`
	}{rep.Time, rep.NodeClocks, rep.NodeBreakdown, rep.NodeMetrics}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func generate(path string, n int64, distName string, seed int64, parts int) error {
	d, err := record.ParseDistribution(distName)
	if err != nil {
		return err
	}
	keys := d.Generate(int(n), seed, parts)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	var buf [4]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint32(buf[:], k)
		if _, err := w.Write(buf[:]); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// jsonMode mirrors the -json flag for the error paths: with it set,
// failures print the same machine-readable error object the hetsortd
// API returns, to stdout, and the exit code is the only other signal.
var jsonMode bool

// cliResult is the -json output object.  On failure it carries the
// error string (the hetsortd API's {"error": ...} shape, plus the crash
// and resume fields a batch driver needs to orchestrate recovery).
type cliResult struct {
	OK         bool      `json:"ok"`
	Error      string    `json:"error,omitempty"`
	Crash      bool      `json:"crash,omitempty"`
	ResumeHint string    `json:"resume_hint,omitempty"`
	Time       float64   `json:"time,omitempty"`
	Expansion  float64   `json:"expansion,omitempty"`
	Partitions []int64   `json:"partitions,omitempty"`
	NodeClocks []float64 `json:"node_clocks,omitempty"`
}

// resultJSON renders the -json object for a finished (rep) or failed
// (err) run; ckptDir fills the resume hint for recoverable crashes.
func resultJSON(rep *hetsort.Report, err error, ckptDir string) []byte {
	var r cliResult
	if err != nil {
		r.Error = err.Error()
		if hetsort.IsCrash(err) {
			r.Crash = true
			if ckptDir != "" {
				r.ResumeHint = fmt.Sprintf("hetsort -resume -checkpoint-dir %s", ckptDir)
			}
		}
	} else {
		r.OK = true
		r.Time = rep.Time
		r.Expansion = rep.SublistExpansion
		r.Partitions = rep.PartitionSizes
		r.NodeClocks = rep.NodeClocks
	}
	out, merr := json.Marshal(&r)
	if merr != nil { // cliResult always marshals; belt and braces
		out = []byte(fmt.Sprintf(`{"ok":false,"error":%q}`, merr))
	}
	return append(out, '\n')
}

func fatal(err error) {
	if jsonMode {
		os.Stdout.Write(resultJSON(nil, err, ""))
	} else {
		fmt.Fprintln(os.Stderr, "hetsort:", err)
	}
	os.Exit(1)
}

package extsort

import (
	"fmt"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/polyphase"
	"hetsort/internal/trace"
)

// pipelineFits reports whether the fused receive→merge of step 4+5 fits
// the node's memory budget: one MessageKeys buffer per incoming stream,
// one spill-writer block per stream (only used under Checkpoint, but
// budgeted conservatively), and the output writer's block.
func (c Config) pipelineFits(p int) bool {
	return (c.MessageKeys+c.BlockKeys)*p+c.BlockKeys <= c.MemoryKeys
}

// pipelineMerge is the fused steps 4+5 for a needy node: it merges the
// p incoming redistribution streams directly into the output file as
// the messages arrive, so the received data is never written to disk
// and re-read (the barrier path's 2·l_i/B block I/Os).  With Checkpoint
// the streams are additionally teed to the durable receive files the
// phase-4 manifest lists — spill-while-merging — which still saves the
// re-read.  Returns the per-peer key counts, exactly like
// receiveSegments.
func (w *worker) pipelineMerge(recvNames []string) (counts []int64, err error) {
	n, cfg := w.n, w.cfg
	p := n.P()

	streams := make([]*cluster.Stream, p)
	spillFiles := make([]diskio.File, p)
	spillW := make([]diskio.BlockWriter, p)
	defer func() {
		for _, s := range streams {
			if s != nil {
				s.Close()
			}
		}
		for i := range spillW {
			if spillW[i] != nil {
				if cerr := spillW[i].Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
			if spillFiles[i] != nil {
				if cerr := spillFiles[i].Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
		}
	}()
	for i := 0; i < p; i++ {
		s := n.OpenStream(i, tagData)
		if cfg.Checkpoint {
			f, cerr := n.FS().Create(recvNames[i])
			if cerr != nil {
				return nil, cerr
			}
			wr := diskio.NewBlockWriter(f, cfg.BlockKeys, n.Acct(), w.overlap())
			spillFiles[i], spillW[i] = f, wr
			s.Tee = wr.WriteKeys
		}
		streams[i] = s
	}

	mode := "fused"
	if cfg.Checkpoint {
		mode = "spill"
	}
	n.TraceEvent(trace.Pipeline, mode, fmt.Sprintf("fan-in:%d msg:%d", p, cfg.MessageKeys))

	outFile, err := n.FS().Create(w.output)
	if err != nil {
		return nil, err
	}
	out := diskio.NewBlockWriter(outFile, cfg.BlockKeys, n.Acct(), w.overlap())
	srcs := make([]polyphase.MergeSource, p)
	for i := range streams {
		srcs[i] = streams[i]
	}
	if err := polyphase.MergeOpt(srcs, n, out.WriteKeys, polyphase.MergeOptions{NoGallop: w.cfg.NoGalloping}); err != nil {
		out.Close()
		outFile.Close()
		return nil, err
	}
	if err := out.Close(); err != nil {
		outFile.Close()
		return nil, err
	}
	if err := outFile.Close(); err != nil {
		return nil, err
	}
	counts = make([]int64, p)
	for i, s := range streams {
		counts[i] = s.Received()
	}
	return counts, nil
}

package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ExpositionContentType is the Content-Type of the Prometheus text
// exposition format version 0.0.4, which Exposition.WriteTo emits.
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

// Exposition builds a Prometheus text-format (0.0.4) metrics page:
// every metric family gets exactly one # HELP and # TYPE comment,
// families are emitted in stable lexical order, metric names are
// sanitized to the legal charset, and label values are escaped.  Use
// one per scrape; it is not safe for concurrent use.
type Exposition struct {
	prefix   string
	families map[string]*expoFamily
}

type expoFamily struct {
	name, help, typ string
	samples         []expoSample
}

type expoSample struct {
	suffix string // "" for the family series, "_bucket" etc. for histogram children
	labels string // rendered "{...}" or ""
	value  float64
}

// NewExposition returns a builder whose metric names are all prefixed
// with prefix+"_" (pass "" for no prefix).
func NewExposition(prefix string) *Exposition {
	return &Exposition{prefix: prefix, families: make(map[string]*expoFamily)}
}

// Counter adds a counter sample.  Repeated calls with the same name and
// different labels add series to the same family; help from the first
// call wins.
func (e *Exposition) Counter(name, help string, v float64, labels []Label) {
	e.add(name, help, "counter", "", labels, v)
}

// Gauge adds a gauge sample.
func (e *Exposition) Gauge(name, help string, v float64, labels []Label) {
	e.add(name, help, "gauge", "", labels, v)
}

// Histogram adds a Histogram as a full Prometheus histogram family:
// cumulative `_bucket{le="..."}` series over the non-empty power-of-two
// buckets plus the mandatory `+Inf` bucket, `_sum`, and `_count`.
func (e *Exposition) Histogram(name, help string, h *Histogram, labels []Label) {
	f := e.family(name, help, "histogram")
	var cum int64
	for _, b := range h.BucketCounts() {
		cum += b.Count
		le := append(append([]Label(nil), labels...),
			Label{Name: "le", Value: formatExpoValue(b.UpperBound)})
		f.samples = append(f.samples, expoSample{suffix: "_bucket", labels: renderLabels(le), value: float64(cum)})
	}
	inf := append(append([]Label(nil), labels...), Label{Name: "le", Value: "+Inf"})
	f.samples = append(f.samples, expoSample{suffix: "_bucket", labels: renderLabels(inf), value: float64(h.Count())})
	f.samples = append(f.samples, expoSample{suffix: "_sum", labels: renderLabels(labels), value: h.Sum()})
	f.samples = append(f.samples, expoSample{suffix: "_count", labels: renderLabels(labels), value: float64(h.Count())})
}

func (e *Exposition) add(name, help, typ, suffix string, labels []Label, v float64) {
	f := e.family(name, help, typ)
	f.samples = append(f.samples, expoSample{suffix: suffix, labels: renderLabels(labels), value: v})
}

func (e *Exposition) family(name, help, typ string) *expoFamily {
	full := SanitizeMetricName(e.prefix, name)
	f, ok := e.families[full]
	if !ok {
		f = &expoFamily{name: full, help: help, typ: typ}
		e.families[full] = f
	}
	return f
}

// WriteTo renders the page: families sorted by name, one HELP/TYPE pair
// each, then the family's samples in insertion order.
func (e *Exposition) WriteTo(w io.Writer) (int64, error) {
	names := make([]string, 0, len(e.families))
	for n := range e.families {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := e.families[n]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			fmt.Fprintf(&b, "%s%s%s %s\n", f.name, s.suffix, s.labels, formatExpoValue(s.value))
		}
	}
	nn, err := io.WriteString(w, b.String())
	return int64(nn), err
}

// SanitizeMetricName joins prefix and name with '_' and maps every byte
// outside the legal metric-name charset [a-zA-Z0-9_:] to '_' (the
// registry's dotted names become underscored), prepending '_' if the
// result would start with a digit.
func SanitizeMetricName(prefix, name string) string {
	full := name
	if prefix != "" {
		full = prefix + "_" + name
	}
	var b []byte
	for i := 0; i < len(full); i++ {
		c := full[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			b = append(b, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b = append(b, '_')
			}
			b = append(b, c)
		default:
			b = append(b, '_')
		}
	}
	if len(b) == 0 {
		return "_"
	}
	return string(b)
}

// renderLabels renders `{a="x",b="y"}` with escaped values, or "" when
// there are no labels.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(SanitizeMetricName("", l.Name))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies the 0.0.4 label-value escapes: backslash,
// double quote, and newline.
func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// escapeHelp applies the HELP-text escapes (backslash and newline; the
// format leaves quotes alone here).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// formatExpoValue renders a sample value or `le` bound the way
// Prometheus expects: shortest float representation, integers without
// an exponent.
func formatExpoValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

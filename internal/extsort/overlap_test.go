package extsort

import (
	"fmt"
	"math/rand"
	"testing"

	"hetsort/internal/cluster"
	"hetsort/internal/pdm"
	"hetsort/internal/perf"
	"hetsort/internal/record"
	"hetsort/internal/vtime"
)

// runOverlapOnce sorts a fresh cluster with cfg and returns the per-node
// outputs, each node's per-phase PDM I/O attribution, and the result.
func runOverlapOnce(t *testing.T, v perf.Vector, cfg Config, dist record.Distribution,
	n int64, seed int64) ([][]record.Key, [][pdm.PhaseCount]pdm.IOStats, *Result) {
	t.Helper()
	c := newCluster(t, v)
	sum, err := DistributeInput(c, v, dist, n, seed, cfg.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	cfg.InputSum = sum
	res, err := Sort(c, cfg, "input", "output")
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
		t.Fatal(err)
	}
	outs := make([][]record.Key, c.P())
	phases := make([][pdm.PhaseCount]pdm.IOStats, c.P())
	for i := 0; i < c.P(); i++ {
		if outs[i], err = diskioReadAll(c, i, cfg.BlockKeys); err != nil {
			t.Fatal(err)
		}
		phases[i] = c.Node(i).Counter().PhaseSnapshot()
	}
	return outs, phases, res
}

// TestOverlapMatchesSynchronousProperty is the acceptance property of
// overlapped I/O: for random perf vectors, pivot strategies, sizes and
// distributions, the overlapped run's per-node output files are
// byte-identical to the synchronous run's and every node's PDM I/O
// counts — reads, writes and seeks, per phase — are exactly equal.
// Overlap changes when block transfers cost virtual time, never how
// many happen.  The overlapped run must also be no slower and its time
// attribution must still sum to each node's clock.
func TestOverlapMatchesSynchronousProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	vectors := []perf.Vector{{1, 1}, {1, 1, 4, 4}, {1, 2, 4}, {1, 1, 1, 1}, {1, 3}}
	strategies := []Strategy{RegularSampling, Overpartitioning, RandomPivots, QuantileSketch}
	dists := []record.Distribution{record.Uniform, record.Zipf, record.Gaussian}

	for trial := 0; trial < 10; trial++ {
		v := vectors[trial%len(vectors)]
		strat := strategies[trial%len(strategies)]
		dist := dists[rng.Intn(len(dists))]
		n := v.NearestValidSize(int64(1) << (12 + rng.Intn(3)))
		seed := rng.Int63()

		cfg := testConfig(v)
		cfg.Strategy = strat
		if trial%3 == 0 {
			cfg.Pipeline = true // overlap must compose with the fused merge
			cfg.MemoryKeys = 8192
		}
		if trial%4 == 0 {
			cfg.OverlapDepth = 1 + rng.Intn(4)
		}

		name := fmt.Sprintf("p%d_strat%d_%v_n%d", len(v), strat, dist, n)
		t.Run(name, func(t *testing.T) {
			sync, syncPhases, syncRes := runOverlapOnce(t, v, cfg, dist, n, seed)
			ocfg := cfg
			ocfg.Overlap = true
			over, overPhases, overRes := runOverlapOnce(t, v, ocfg, dist, n, seed)

			for i := range sync {
				if len(sync[i]) != len(over[i]) {
					t.Fatalf("node %d: %d keys overlapped vs %d synchronous", i, len(over[i]), len(sync[i]))
				}
				for j := range sync[i] {
					if sync[i][j] != over[i][j] {
						t.Fatalf("node %d key %d: overlapped %d != synchronous %d", i, j, over[i][j], sync[i][j])
					}
				}
				for ph := range syncPhases[i] {
					if syncPhases[i][ph] != overPhases[i][ph] {
						t.Errorf("node %d phase %d: overlapped I/O %+v != synchronous %+v",
							i, ph, overPhases[i][ph], syncPhases[i][ph])
					}
				}
			}
			if overRes.Time > syncRes.Time {
				t.Errorf("overlapped run slower: %.6f vs %.6f virtual s", overRes.Time, syncRes.Time)
			}
			for i, b := range overRes.NodeAttr {
				if err := vtime.CheckAttribution(overRes.NodeClocks[i], b); err != nil {
					t.Errorf("node %d: %v", i, err)
				}
			}
		})
	}
}

// TestOverlapCrashResumeProperty: Overlap is a pure execution strategy,
// so a checkpointed run crashed at any phase boundary may be resumed
// with overlap toggled the other way and must still produce output
// byte-identical to an uninterrupted synchronous run.
func TestOverlapCrashResumeProperty(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	n := v.NearestValidSize(1 << 13)
	base := testConfig(v)
	base.Checkpoint = true
	const seed = 77

	want, _, _ := runOverlapOnce(t, v, base, record.Uniform, n, seed)

	var points []string
	for _, s := range StepNames {
		points = append(points, s, "committed:"+s)
	}
	for pi, point := range points {
		point := point
		crashNode := pi % len(v)
		t.Run(point, func(t *testing.T) {
			c := newCluster(t, v)
			sum, err := DistributeInput(c, v, record.Uniform, n, seed, base.BlockKeys, "input")
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.Overlap = pi%2 == 0 // crash an overlapped run on even points...
			cfg.InputSum = sum
			if err := c.ScheduleCrash(crashNode, -1, point); err != nil {
				t.Fatal(err)
			}
			if _, err := Sort(c, cfg, "input", "output"); !cluster.IsCrash(err) {
				t.Fatalf("crash at %q did not surface: %v", point, err)
			}
			rcfg := cfg
			rcfg.Overlap = !cfg.Overlap // ...and resume it synchronous (and vice versa)
			if _, got, err := Resume(c, rcfg, "input", "output"); err != nil {
				t.Fatalf("resume after crash at %q: %v", point, err)
			} else if !got.Equal(sum) {
				t.Error("manifest input checksum differs from the distributed input's")
			}
			if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
				t.Fatalf("resumed output: %v", err)
			}
			for i := 0; i < c.P(); i++ {
				part, err := diskioReadAll(c, i, cfg.BlockKeys)
				if err != nil {
					t.Fatal(err)
				}
				if len(part) != len(want[i]) {
					t.Fatalf("node %d: resumed %d keys, reference %d", i, len(part), len(want[i]))
				}
				for j := range part {
					if part[j] != want[i][j] {
						t.Fatalf("node %d key %d: resumed %d != reference %d", i, j, part[j], want[i][j])
					}
				}
			}
		})
	}
}

package extsort

import (
	"fmt"
	"testing"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/perf"
	"hetsort/internal/record"
	"hetsort/internal/sampling"
)

// TestTopoLevelsAndRouting checks the routing algebra the hierarchical
// redistribution stands on: the levels strictly decrease from p to 1,
// every bucket reaches its destination after the rounds, a destination
// inside the sender's own sub-block routes to the sender itself, and
// roundInNeighbors is the exact inverse of routeStep.
func TestTopoLevelsAndRouting(t *testing.T) {
	for _, topo := range []Topology{TopologyTree, TopologyGrid} {
		for _, radix := range []int{2, 3, 4, 16} {
			for _, p := range []int{1, 2, 3, 4, 5, 8, 16, 17, 31, 64, 100} {
				lv := topoLevels(p, topo, radix)
				if lv[0] != p && p > 1 {
					t.Fatalf("p=%d %v r%d: levels %v do not start at p", p, topo, radix, lv)
				}
				if lv[len(lv)-1] != 1 {
					t.Fatalf("p=%d %v r%d: levels %v do not end at 1", p, topo, radix, lv)
				}
				for i := 1; i < len(lv); i++ {
					if lv[i] >= lv[i-1] {
						t.Fatalf("p=%d %v r%d: levels %v not strictly decreasing", p, topo, radix, lv)
					}
				}
				// Simulate the rounds: holder[src][dest] is where src's
				// bucket for dest currently lives.
				holder := make([][]int, p)
				for s := range holder {
					holder[s] = make([]int, p)
					for d := range holder[s] {
						holder[s][d] = s
					}
				}
				for ri := 0; ri+1 < len(lv); ri++ {
					s, sub := lv[ri], lv[ri+1]
					for src := 0; src < p; src++ {
						for d := 0; d < p; d++ {
							h := holder[src][d]
							rep := routeStep(h, d/sub*sub, s, sub, p)
							if rep/sub != d/sub && sub > 1 {
								t.Fatalf("p=%d %v r%d round %d: bucket %d->%d routed to %d outside dest sub-block",
									p, topo, radix, ri, src, d, rep)
							}
							if h/sub == d/sub && rep != h {
								t.Fatalf("p=%d %v r%d round %d: dest %d in holder %d's own sub-block must stay local, routed to %d",
									p, topo, radix, ri, d, h, rep)
							}
							if rep != h {
								found := false
								for _, in := range roundInNeighbors(rep, s, sub, p) {
									if in == h {
										found = true
									}
								}
								if !found {
									t.Fatalf("p=%d %v r%d round %d: %d routes to %d but is not an in-neighbor",
										p, topo, radix, ri, h, rep)
								}
							}
							holder[src][d] = rep
						}
					}
				}
				for src := 0; src < p; src++ {
					for d := 0; d < p; d++ {
						if holder[src][d] != d {
							t.Fatalf("p=%d %v r%d: bucket %d->%d stranded at %d", p, topo, radix, src, d, holder[src][d])
						}
					}
				}
			}
		}
	}
}

// TestPeakFanInScaling is the point of the topologies: the hierarchical
// per-round fan-in must stay O(r) while the flat all-to-all's grows
// linearly in p.
func TestPeakFanInScaling(t *testing.T) {
	for _, p := range []int{16, 64, 256, 1024} {
		flat := PeakFanIn(p, TopologyFlat, 0)
		if flat != p {
			t.Fatalf("flat peak fan-in %d, want %d", flat, p)
		}
		for _, radix := range []int{2, 4, 16} {
			tree := PeakFanIn(p, TopologyTree, radix)
			if tree > 2*radix {
				t.Fatalf("p=%d r%d: tree peak fan-in %d exceeds 2r", p, radix, tree)
			}
			if radix < p && tree >= flat {
				// radix >= p degenerates to a single all-to-all round.
				t.Fatalf("p=%d r%d: tree peak fan-in %d not below flat %d", p, radix, tree, flat)
			}
		}
		grid := PeakFanIn(p, TopologyGrid, 0)
		if g := gridRadix(p); grid > 2*g {
			t.Fatalf("p=%d: grid peak fan-in %d exceeds 2⌈√p⌉=%d", p, grid, 2*g)
		}
	}
	// Link-buffer memory must grow sub-quadratically for the tree.
	var cfg Config
	flat1k := cfg.LinkMemoryBytes(1024)
	cfg.Topology = TopologyTree
	tree1k := cfg.LinkMemoryBytes(1024)
	if tree1k*16 > flat1k {
		t.Fatalf("tree link memory %d not well below flat %d at p=1024", tree1k, flat1k)
	}
}

// nodeOutputs reads every node's output file.
func nodeOutputs(t *testing.T, c *cluster.Cluster, block int) [][]record.Key {
	t.Helper()
	out := make([][]record.Key, c.P())
	for i := 0; i < c.P(); i++ {
		part, err := diskio.ReadFileAll(c.Node(i).FS(), "output", block, diskio.Accounting{})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = part
	}
	return out
}

// runTopo distributes the same input (same seed) on a fresh cluster and
// sorts it under the given topology.
func runTopo(t *testing.T, v perf.Vector, cfg Config, n, seed int64) (*cluster.Cluster, *Result) {
	t.Helper()
	c := newCluster(t, v)
	sum, err := DistributeInput(c, v, record.Uniform, n, seed, cfg.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sort(c, cfg, "input", "output")
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
		t.Fatal(err)
	}
	return c, res
}

// TestTopologyByteEquivalence is the acceptance invariant: tree and grid
// runs must produce per-node output byte-identical to the flat run, for
// radix powers and ragged cluster sizes alike.
func TestTopologyByteEquivalence(t *testing.T) {
	cases := []struct {
		v perf.Vector
	}{
		{perf.Homogeneous(2)},
		{perf.Homogeneous(4)},
		{perf.Homogeneous(5)},
		{perf.Vector{1, 1, 4, 4}},
		{perf.Homogeneous(8)},
		{perf.Vector{8, 5, 3, 1, 8, 5, 3, 1}},
		{perf.Homogeneous(16)},
	}
	for _, tc := range cases {
		v := tc.v
		base := testConfig(v)
		n := v.NearestValidSize(int64(4000 * len(v)))
		flatCluster, _ := runTopo(t, v, base, n, 11)
		want := nodeOutputs(t, flatCluster, base.BlockKeys)
		variants := []struct {
			name  string
			topo  Topology
			radix int
		}{
			{"tree-r2", TopologyTree, 2},
			{"tree-r4", TopologyTree, 4},
			{"tree-r16", TopologyTree, 16},
			{"grid", TopologyGrid, 0},
		}
		for _, vr := range variants {
			t.Run(fmt.Sprintf("p%d-%s", len(v), vr.name), func(t *testing.T) {
				cfg := base
				cfg.Topology = vr.topo
				cfg.Radix = vr.radix
				c, _ := runTopo(t, v, cfg, n, 11)
				got := nodeOutputs(t, c, cfg.BlockKeys)
				for i := range want {
					if len(got[i]) != len(want[i]) {
						t.Fatalf("node %d: %d keys, flat %d", i, len(got[i]), len(want[i]))
					}
					for j := range want[i] {
						if got[i][j] != want[i][j] {
							t.Fatalf("node %d diverges from flat at key %d", i, j)
						}
					}
				}
			})
		}
	}
}

// TestTopologyStrategyEquivalence runs every pivot strategy under the
// tree topology.  The exact strategies must match the flat run per node;
// the quantile sketch's merge is order-sensitive, so there only the
// global concatenation must match (both are the sorted input multiset).
func TestTopologyStrategyEquivalence(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	n := v.NearestValidSize(16000)
	for _, strat := range []Strategy{RegularSampling, RandomPivots, Overpartitioning, QuantileSketch} {
		t.Run(strat.String(), func(t *testing.T) {
			base := testConfig(v)
			base.Strategy = strat
			base.Seed = 99
			flatCluster, _ := runTopo(t, v, base, n, 13)
			want := nodeOutputs(t, flatCluster, base.BlockKeys)
			cfg := base
			cfg.Topology = TopologyTree
			cfg.Radix = 2
			c, _ := runTopo(t, v, cfg, n, 13)
			got := nodeOutputs(t, c, cfg.BlockKeys)
			if strat == QuantileSketch {
				var flatAll, treeAll []record.Key
				for i := range want {
					flatAll = append(flatAll, want[i]...)
					treeAll = append(treeAll, got[i]...)
				}
				if len(flatAll) != len(treeAll) {
					t.Fatalf("global output %d keys, flat %d", len(treeAll), len(flatAll))
				}
				for j := range flatAll {
					if flatAll[j] != treeAll[j] {
						t.Fatalf("global output diverges at key %d", j)
					}
				}
				return
			}
			for i := range want {
				if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
					t.Fatalf("node %d output differs from flat", i)
				}
			}
		})
	}
}

// TestTopologyPipelineEquivalence fuses the final round into the output
// merge and must still match the flat barrier run byte for byte.
func TestTopologyPipelineEquivalence(t *testing.T) {
	v := perf.Homogeneous(8)
	n := v.NearestValidSize(32000)
	base := testConfig(v)
	flatCluster, _ := runTopo(t, v, base, n, 17)
	want := nodeOutputs(t, flatCluster, base.BlockKeys)
	for _, topo := range []Topology{TopologyTree, TopologyGrid} {
		for _, pipe := range []bool{false, true} {
			t.Run(fmt.Sprintf("%v-pipeline=%v", topo, pipe), func(t *testing.T) {
				cfg := base
				cfg.Topology = topo
				cfg.Radix = 3
				cfg.Pipeline = pipe
				c, _ := runTopo(t, v, cfg, n, 17)
				got := nodeOutputs(t, c, cfg.BlockKeys)
				for i := range want {
					if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
						t.Fatalf("node %d output differs from flat", i)
					}
				}
			})
		}
	}
}

// TestTopologyFanInMetric checks the deterministic protocol fan-in gauge
// the scaling bench gates on: hierarchical runs must report a peak open
// stream count well under the flat path's p.
func TestTopologyFanInMetric(t *testing.T) {
	v := perf.Homogeneous(16)
	n := v.NearestValidSize(32000)
	base := testConfig(v)
	flatCluster, _ := runTopo(t, v, base, n, 19)
	cfg := base
	cfg.Topology = TopologyTree
	cfg.Radix = 2
	treeCluster, _ := runTopo(t, v, cfg, n, 19)
	flatFan := 0.0
	treeFan := 0.0
	for i := 0; i < len(v); i++ {
		if g := flatCluster.Node(i).Metrics().Gauge("redist.fanin.streams").Value(); g > flatFan {
			flatFan = g
		}
		if g := treeCluster.Node(i).Metrics().Gauge("redist.fanin.streams").Value(); g > treeFan {
			treeFan = g
		}
	}
	if flatFan != float64(len(v)) {
		t.Fatalf("flat fan-in gauge %v, want %d", flatFan, len(v))
	}
	if treeFan >= flatFan || treeFan > float64(PeakFanIn(len(v), TopologyTree, 2)) {
		t.Fatalf("tree fan-in gauge %v (flat %v, bound %d)", treeFan, flatFan,
			PeakFanIn(len(v), TopologyTree, 2))
	}
	// Fewer links materialize than the flat mesh.
	if lc := treeCluster.LinksCreated(); lc >= len(v)*len(v) {
		t.Fatalf("tree run created the full %d-link mesh", lc)
	}
}

// TestTreePivotTheorem1 is the property test for hierarchically
// aggregated pivots: pivots produced by the radix-r reduction tree must
// still satisfy the Theorem-1 guarantee — node i's final partition holds
// at most twice its optimal share, plus the worst duplicate multiplicity
// (section 3.1's U+d relaxation, since keys equal to a pivot all route
// to one node) — on uniform, zipfian and all-duplicate inputs.
func TestTreePivotTheorem1(t *testing.T) {
	allDup := func(n int) []record.Key {
		keys := make([]record.Key, n)
		for i := range keys {
			keys[i] = 424242
		}
		return keys
	}
	inputs := []struct {
		name string
		gen  func(n, p int) []record.Key
	}{
		{"uniform", func(n, p int) []record.Key { return record.Uniform.Generate(n, 29, p) }},
		{"zipf", func(n, p int) []record.Key { return record.Zipf.Generate(n, 31, p) }},
		{"all-dup", func(n, _ int) []record.Key { return allDup(n) }},
	}
	variants := []struct {
		name  string
		topo  Topology
		radix int
	}{
		{"tree-r2", TopologyTree, 2},
		{"tree-r4", TopologyTree, 4},
		{"grid", TopologyGrid, 0},
	}
	for _, v := range []perf.Vector{perf.Homogeneous(8), {1, 1, 4, 4}, {8, 5, 3, 1, 8, 5, 3, 1}} {
		v := v
		n := v.NearestValidSize(int64(2000 * len(v)))
		for _, in := range inputs {
			keys := in.gen(int(n), len(v))
			maxDup := maxMultiplicity(keys)
			for _, vr := range variants {
				t.Run(fmt.Sprintf("p%d-%s-%s", len(v), in.name, vr.name), func(t *testing.T) {
					cfg := testConfig(v)
					cfg.Topology = vr.topo
					cfg.Radix = vr.radix
					c := newCluster(t, v)
					sum := distributeKeys(t, c, v, keys, cfg.BlockKeys, "input")
					if _, err := Sort(c, cfg, "input", "output"); err != nil {
						t.Fatal(err)
					}
					if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
						t.Fatal(err)
					}
					for i, part := range nodeOutputs(t, c, cfg.BlockKeys) {
						bound := sampling.TheoreticalBound(n, v, i, maxDup)
						if float64(len(part)) > bound {
							t.Errorf("node %d holds %d keys > 2*opt+maxdup(%d) = %.1f (Theorem 1 violated)",
								i, len(part), maxDup, bound)
						}
					}
				})
			}
		}
	}
}

// distributeKeys writes explicit keys across the cluster in
// perf-proportional portions (DistributeInput for a literal input).
func distributeKeys(t *testing.T, c *cluster.Cluster, v perf.Vector, keys []record.Key, block int, name string) record.Checksum {
	t.Helper()
	shares := v.Shares(int64(len(keys)))
	var off int64
	for i := 0; i < c.P(); i++ {
		portion := keys[off : off+shares[i]]
		off += shares[i]
		if err := diskio.WriteFile(c.Node(i).FS(), name, portion, block, diskio.Accounting{}); err != nil {
			t.Fatal(err)
		}
	}
	return record.ChecksumOf(keys)
}

// maxMultiplicity returns the count of the most frequent key.
func maxMultiplicity(keys []record.Key) int64 {
	counts := make(map[record.Key]int64, len(keys))
	var most int64
	for _, k := range keys {
		counts[k]++
		if counts[k] > most {
			most = counts[k]
		}
	}
	return most
}

// TestHierCrashResume kills nodes at the redistribution-phase crash
// points of a tree-topology checkpointed run; the resume must finish
// with output identical to the uninterrupted run.
func TestHierCrashResume(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4, 1, 1, 4, 4}
	n := v.NearestValidSize(1 << 14)
	base := testConfig(v)
	base.Checkpoint = true
	base.Topology = TopologyTree
	base.Radix = 2
	const seed = 23

	refC := newCluster(t, v)
	refSum, err := DistributeInput(refC, v, record.Uniform, n, seed, base.BlockKeys, "input")
	if err != nil {
		t.Fatal(err)
	}
	refCfg := base
	refCfg.InputSum = refSum
	if _, err := Sort(refC, refCfg, "input", "output"); err != nil {
		t.Fatal(err)
	}
	want := collectOutput(t, refC, base.BlockKeys)

	points := []string{
		StepNames[2], "committed:" + StepNames[2],
		StepNames[3], "committed:" + StepNames[3],
		StepNames[4], "committed:" + StepNames[4],
	}
	for pi, point := range points {
		point := point
		crashNode := (pi * 3) % len(v)
		t.Run(point, func(t *testing.T) {
			c := newCluster(t, v)
			sum, err := DistributeInput(c, v, record.Uniform, n, seed, base.BlockKeys, "input")
			if err != nil {
				t.Fatal(err)
			}
			cfg := base
			cfg.InputSum = sum
			if err := c.ScheduleCrash(crashNode, -1, point); err != nil {
				t.Fatal(err)
			}
			if _, err := Sort(c, cfg, "input", "output"); !cluster.IsCrash(err) {
				t.Fatalf("crash at %q did not surface: %v", point, err)
			}
			if _, _, err := Resume(c, cfg, "input", "output"); err != nil {
				t.Fatalf("resume after crash at %q: %v", point, err)
			}
			if err := VerifyOutput(c, "output", cfg.BlockKeys, sum); err != nil {
				t.Fatalf("resumed output: %v", err)
			}
			got := collectOutput(t, c, cfg.BlockKeys)
			if len(got) != len(want) {
				t.Fatalf("resumed output has %d keys, reference %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("resumed output diverges at key %d", i)
				}
			}
			// No stale round intermediates may survive the phase-5 sweep.
			for i := 0; i < c.P(); i++ {
				names, err := c.Node(i).FS().Names()
				if err != nil {
					t.Fatal(err)
				}
				for _, name := range names {
					if len(name) >= len(hierRoundPrefix) && name[:len(hierRoundPrefix)] == hierRoundPrefix {
						t.Fatalf("node %d kept stale intermediate %s", i, name)
					}
				}
			}
		})
	}
}

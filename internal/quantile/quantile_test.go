package quantile

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"hetsort/internal/record"
)

// rankInterval returns the 1-based rank interval a value occupies in
// sorted order: [count(< v)+1, count(<= v)].  With duplicates a single
// value legitimately answers every quantile in that interval.
func rankInterval(sorted []record.Key, v record.Key) (lo, hi float64) {
	l := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= v })
	h := sort.Search(len(sorted), func(i int) bool { return sorted[i] > v })
	return float64(l + 1), float64(h)
}

func checkAccuracy(t *testing.T, s *Summary, keys []record.Key, eps float64) {
	t.Helper()
	sorted := append([]record.Key(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := float64(len(sorted))
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		v, err := s.Query(phi)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := rankInterval(sorted, v)
		target := phi * n
		allowed := 2*eps*n + 1
		var diff float64
		switch {
		case target < lo:
			diff = lo - target
		case target > hi:
			diff = target - hi
		}
		if diff > allowed {
			t.Fatalf("phi=%v: rank interval [%v,%v] vs target %v (allowed %v)",
				phi, lo, hi, target, allowed)
		}
	}
}

func TestNewValidation(t *testing.T) {
	// NaN must be rejected too: every comparison against NaN is
	// false, so the check is written as !(eps > 0 && eps < 1).
	for _, eps := range []float64{0, 1, -0.5, 1.5, math.NaN(), math.Inf(1)} {
		if _, err := New(eps); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
	}
	if _, err := New(0.01); err != nil {
		t.Fatal(err)
	}
}

func TestWeightsToKeysOverflow(t *testing.T) {
	ok, err := WeightsToKeys([]int64{0, 1, 1 << 31, 1<<32 - 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ok) != 4 || ok[2] != record.Key(1<<31) || ok[3] != record.Key(1<<32-1) {
		t.Fatalf("round trip: %v", ok)
	}
	for _, w := range []int64{1 << 32, 1 << 33, -1} {
		if _, err := WeightsToKeys([]int64{1, w}); err == nil {
			t.Errorf("weight %d silently clamped", w)
		}
	}
}

func TestAccuracyUniform(t *testing.T) {
	const eps = 0.01
	s, _ := New(eps)
	keys := record.Uniform.Generate(50000, 1, 1)
	s.InsertAll(keys)
	if s.Count() != 50000 {
		t.Fatalf("Count=%d", s.Count())
	}
	checkAccuracy(t, s, keys, eps)
}

func TestAccuracySortedAndReverse(t *testing.T) {
	const eps = 0.02
	for _, d := range []record.Distribution{record.Sorted, record.Reverse} {
		s, _ := New(eps)
		keys := d.Generate(20000, 2, 1)
		s.InsertAll(keys)
		checkAccuracy(t, s, keys, eps)
	}
}

func TestAccuracyDuplicateHeavy(t *testing.T) {
	const eps = 0.02
	s, _ := New(eps)
	keys := record.Zipf.Generate(30000, 3, 1)
	s.InsertAll(keys)
	checkAccuracy(t, s, keys, eps)
}

func TestSpaceIsSublinear(t *testing.T) {
	const eps = 0.01
	s, _ := New(eps)
	keys := record.Uniform.Generate(200000, 5, 1)
	s.InsertAll(keys)
	if tc := s.TupleCount(); tc > 20000 {
		t.Fatalf("sketch holds %d tuples for 200k keys — no compression?", tc)
	}
}

func TestEmptyQuery(t *testing.T) {
	s, _ := New(0.1)
	if _, err := s.Query(0.5); err == nil {
		t.Fatal("empty query should error")
	}
}

func TestSingleKey(t *testing.T) {
	s, _ := New(0.1)
	s.Insert(42)
	for _, phi := range []float64{-1, 0, 0.5, 1, 2} {
		v, err := s.Query(phi)
		if err != nil || v != 42 {
			t.Fatalf("phi=%v: %v, %v", phi, v, err)
		}
	}
}

func TestMergeAccuracy(t *testing.T) {
	const eps = 0.01
	a, _ := New(eps)
	b, _ := New(eps)
	ka := record.Uniform.Generate(30000, 7, 1)
	kb := record.Gaussian.Generate(30000, 8, 1)
	a.InsertAll(ka)
	b.InsertAll(kb)
	a.Merge(b)
	if a.Count() != 60000 {
		t.Fatalf("merged count %d", a.Count())
	}
	all := append(append([]record.Key(nil), ka...), kb...)
	// Merged error is bounded by the sum of the epsilons.
	checkAccuracy(t, a, all, 2*eps)
}

func TestMergeEmpty(t *testing.T) {
	a, _ := New(0.05)
	b, _ := New(0.05)
	a.Insert(1)
	a.Merge(b) // no-op
	if a.Count() != 1 {
		t.Fatal("merge with empty changed count")
	}
	b.Merge(a)
	if v, err := b.Query(0.5); err != nil || v != 1 {
		t.Fatalf("merge into empty: %v %v", v, err)
	}
}

func TestExportRoundTrip(t *testing.T) {
	const eps = 0.02
	s, _ := New(eps)
	keys := record.Uniform.Generate(20000, 9, 1)
	s.InsertAll(keys)
	vals, weights := s.Export()
	var total int64
	for _, w := range weights {
		total += w
	}
	if total != s.Count() {
		t.Fatalf("export weights sum %d != count %d", total, s.Count())
	}
	r, err := FromExport(eps, vals, weights)
	if err != nil {
		t.Fatal(err)
	}
	// The round-tripped summary loses the delta terms, so allow a
	// slightly wider band.
	checkAccuracy(t, r, keys, 2*eps)
}

func TestFromExportValidation(t *testing.T) {
	if _, err := FromExport(0.1, []record.Key{1}, []int64{1, 2}); err == nil {
		t.Fatal("ragged export accepted")
	}
	if _, err := FromExport(0.1, []record.Key{2, 1}, []int64{1, 1}); err == nil {
		t.Fatal("unsorted export accepted")
	}
	if _, err := FromExport(0.1, []record.Key{1}, []int64{0}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := FromExport(2, []record.Key{1}, []int64{1}); err == nil {
		t.Fatal("bad eps accepted")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		s, _ := New(0.02)
		keys := record.Uniform.Generate(5000, seed, 1)
		s.InsertAll(keys)
		prev := record.Key(0)
		for _, phi := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
			v, err := s.Query(phi)
			if err != nil || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCountWithBufferedInserts(t *testing.T) {
	s, _ := New(0.25) // large eps -> big batch, stays buffered
	s.Insert(1)
	s.Insert(2)
	if s.Count() != 2 {
		t.Fatalf("Count=%d with buffered inserts", s.Count())
	}
}

package diskio

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"hetsort/internal/pdm"
	"hetsort/internal/record"
	"hetsort/internal/vtime"
)

// stripedPair returns a plain MemFS and a 4-disk striped view over a
// second MemFS with the given stripe unit in keys.
func stripedPair(t *testing.T, disks, unitKeys int) (plain, striped FS) {
	t.Helper()
	plain = NewMemFS()
	s, err := StripeOver(NewMemFS(), disks, int64(unitKeys*record.KeySize))
	if err != nil {
		t.Fatalf("StripeOver: %v", err)
	}
	return plain, s
}

func seq(n int) []record.Key {
	keys := make([]record.Key, n)
	for i := range keys {
		keys[i] = record.Key(i*2347 + 11)
	}
	return keys
}

// TestStripedRoundTrip checks the core contract: the bytes a striped
// file yields are identical to a plain file's, for sizes spanning
// empty, sub-unit, exact multiples, and ragged tails.
func TestStripedRoundTrip(t *testing.T) {
	const unitKeys = 8
	for _, n := range []int{0, 1, 7, 8, 9, 31, 32, 33, 256, 1000} {
		plain, striped := stripedPair(t, 4, unitKeys)
		keys := seq(n)
		for _, fs := range []FS{plain, striped} {
			if err := WriteFile(fs, "f", keys, unitKeys, Accounting{}); err != nil {
				t.Fatalf("n=%d: WriteFile: %v", n, err)
			}
		}
		a, err := ReadFileAll(plain, "f", unitKeys, Accounting{})
		if err != nil {
			t.Fatalf("n=%d: plain read: %v", n, err)
		}
		b, err := ReadFileAll(striped, "f", unitKeys, Accounting{})
		if err != nil {
			t.Fatalf("n=%d: striped read: %v", n, err)
		}
		if len(a) != n || len(b) != n {
			t.Fatalf("n=%d: lengths %d / %d", n, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: key %d differs: %v vs %v", n, i, a[i], b[i])
			}
		}
	}
}

// TestStripedRawBytes checks striping at the byte level with reads that
// straddle unit boundaries and follow seeks.
func TestStripedRawBytes(t *testing.T) {
	_, striped := stripedPair(t, 3, 1) // unit = 4 bytes
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	f, err := striped.Create("raw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := striped.Open("raw")
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if sz, _ := g.Seek(0, io.SeekEnd); sz != 100 {
		t.Fatalf("size = %d, want 100", sz)
	}
	// Straddling read after a mid-file seek.
	if _, err := g.Seek(3, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 10)
	if _, err := io.ReadFull(g, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[3:13]) {
		t.Fatalf("read %v, want %v", buf, data[3:13])
	}
	// Whole-file read from the start.
	if _, err := g.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	all := make([]byte, 100)
	if _, err := io.ReadFull(g, all); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(all, data) {
		t.Fatal("whole-file read differs")
	}
	// Reading past EOF reports EOF.
	if _, err := g.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read at EOF = %v, want io.EOF", err)
	}
}

// TestStripedPlacement checks DiskAt's round-robin layout and that the
// member chunks land where the layout says.
func TestStripedPlacement(t *testing.T) {
	base := NewMemFS()
	const unit = 8
	s, err := StripeOver(base, 4, unit)
	if err != nil {
		t.Fatal(err)
	}
	f, err := s.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 10*unit)
	for i := range data {
		data[i] = byte(i / unit) // unit u is filled with byte u
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	p, ok := f.(Placed)
	if !ok {
		t.Fatal("striped file does not implement Placed")
	}
	for u := 0; u < 10; u++ {
		if got, want := p.DiskAt(int64(u*unit)), u%4; got != want {
			t.Fatalf("DiskAt(unit %d) = %d, want %d", u, got, want)
		}
	}
	f.Close()
	// Member chunk d0/f holds units 0, 4, 8; d1/f holds 1, 5, 9; etc.
	for d := 0; d < 4; d++ {
		mf, err := base.Open(fmt.Sprintf("d%d/f", d))
		if err != nil {
			t.Fatalf("member %d: %v", d, err)
		}
		chunk, err := io.ReadAll(mf)
		mf.Close()
		if err != nil {
			t.Fatal(err)
		}
		var want []byte
		for u := d; u < 10; u += 4 {
			for i := 0; i < unit; i++ {
				want = append(want, byte(u))
			}
		}
		if !bytes.Equal(chunk, want) {
			t.Fatalf("member %d chunk = %v, want %v", d, chunk, want)
		}
	}
}

// TestStripedMetadata checks Names/Rename/Remove act on all members and
// present one logical namespace.
func TestStripedMetadata(t *testing.T) {
	base := NewMemFS()
	s, err := StripeOver(base, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b"} {
		if err := WriteFile(s, name, seq(5), 4, Accounting{}); err != nil {
			t.Fatal(err)
		}
	}
	names, err := s.Names()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names = %v, want [a b]", names)
	}
	if err := s.Rename("a", "c"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("a"); err == nil {
		t.Fatal("old name still opens after Rename")
	}
	got, err := ReadFileAll(s, "c", 4, Accounting{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("renamed file has %d keys, want 5", len(got))
	}
	if err := s.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("b"); err == nil {
		t.Fatal("removed file still opens")
	}
	// CountKeys sees the logical size across members.
	n, err := CountKeys(s, "c")
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("CountKeys = %d, want 5", n)
	}
}

// TestStripedSequentialWriteOnly checks the append-only write contract.
func TestStripedSequentialWriteOnly(t *testing.T) {
	_, s := stripedPair(t, 2, 4)
	f, err := s.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(make([]byte, 32)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{1}); err == nil {
		t.Fatal("overwrite after seek succeeded, want error")
	}
}

// TestStripeOverSingleDisk checks D <= 1 returns the base FS unchanged.
func TestStripeOverSingleDisk(t *testing.T) {
	base := NewMemFS()
	s, err := StripeOver(base, 1, 32)
	if err != nil {
		t.Fatal(err)
	}
	if s != FS(base) {
		t.Fatal("StripeOver(base, 1) did not return the base FS")
	}
}

// diskMeter records per-disk meter charges, standing in for the
// cluster node's per-disk queues.
type diskMeter struct {
	vtime.Nop
	blocks map[int]int64
	seeks  map[int]int64
}

func newDiskMeter() *diskMeter {
	return &diskMeter{blocks: map[int]int64{}, seeks: map[int]int64{}}
}

func (m *diskMeter) ChargeDiskIOBlocks(d int, n int64) { m.blocks[d] += n }
func (m *diskMeter) ChargeDiskSeek(d int, n int64)     { m.seeks[d] += n }

// TestStripedAccounting checks that block transfers on a striped file
// are attributed round-robin to the member disks — in the per-disk PDM
// counters, in the DiskMeter charges, and summing exactly to the node
// counter.
func TestStripedAccounting(t *testing.T) {
	const blockKeys = 8
	const disks = 4
	_, s := stripedPair(t, disks, blockKeys)

	var node pdm.Counter
	perDisk := make([]*pdm.Counter, disks)
	for i := range perDisk {
		perDisk[i] = &pdm.Counter{}
	}
	meter := newDiskMeter()
	acct := Accounting{Counter: &node, Meter: meter, Disks: perDisk}

	// 10 blocks: disks 0,1 serve 3 blocks each, disks 2,3 serve 2.
	keys := seq(10 * blockKeys)
	if err := WriteFile(s, "f", keys, blockKeys, acct); err != nil {
		t.Fatal(err)
	}
	for d, want := range []int64{3, 3, 2, 2} {
		if got := perDisk[d].Writes(); got != want {
			t.Fatalf("disk %d writes = %d, want %d", d, got, want)
		}
		if got := meter.blocks[d]; got != want {
			t.Fatalf("disk %d meter blocks = %d, want %d", d, got, want)
		}
	}
	if _, err := ReadFileAll(s, "f", blockKeys, acct); err != nil {
		t.Fatal(err)
	}
	var sum pdm.IOStats
	for _, c := range perDisk {
		sum = sum.Add(c.Snapshot())
	}
	if sum != node.Snapshot() {
		t.Fatalf("per-disk sum %+v != node counter %+v", sum, node.Snapshot())
	}
	if node.Reads() != 10 || node.Writes() != 10 {
		t.Fatalf("node counter %+v, want 10 reads / 10 writes", node.Snapshot())
	}

	// ReadKeyAt charges the seek and the read to the disk holding the key.
	f, err := s.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	idx := int64(3 * blockKeys) // first key of block 3 → disk 3
	if _, err := ReadKeyAt(f, idx, acct); err != nil {
		t.Fatal(err)
	}
	if got := perDisk[3].Seeks(); got != 1 {
		t.Fatalf("disk 3 seeks = %d, want 1", got)
	}
	if got := meter.seeks[3]; got != 1 {
		t.Fatalf("disk 3 meter seeks = %d, want 1", got)
	}
}

// TestStripedAccountingOverlapped mirrors TestStripedAccounting through
// the prefetch/write-behind paths: per-disk counts are identical to the
// synchronous path and still sum to the node counter.
func TestStripedAccountingOverlapped(t *testing.T) {
	const blockKeys = 8
	const disks = 4
	_, s := stripedPair(t, disks, blockKeys)

	var node pdm.Counter
	perDisk := make([]*pdm.Counter, disks)
	for i := range perDisk {
		perDisk[i] = &pdm.Counter{}
	}
	acct := Accounting{Counter: &node, Meter: vtime.Nop{}, Disks: perDisk}
	o := Overlap{Enabled: true, Depth: disks}

	keys := seq(10 * blockKeys)
	f, err := s.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	w := NewBlockWriter(f, blockKeys, acct, o)
	if err := w.WriteKeys(keys); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	g, err := s.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	r := NewBlockReader(g, blockKeys, acct, o)
	got := make([]record.Key, 0, len(keys))
	buf := make([]record.Key, blockKeys)
	for {
		n, err := r.ReadKeys(buf)
		got = append(got, buf[:n]...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	r.Release()
	g.Close()
	if len(got) != len(keys) {
		t.Fatalf("read %d keys, want %d", len(got), len(keys))
	}

	for d, want := range []int64{3, 3, 2, 2} {
		if got := perDisk[d].Writes(); got != want {
			t.Fatalf("disk %d writes = %d, want %d", d, got, want)
		}
		if got := perDisk[d].Reads(); got != want {
			t.Fatalf("disk %d reads = %d, want %d", d, got, want)
		}
	}
	var sum pdm.IOStats
	for _, c := range perDisk {
		sum = sum.Add(c.Snapshot())
	}
	if sum != node.Snapshot() {
		t.Fatalf("per-disk sum %+v != node counter %+v", sum, node.Snapshot())
	}
}

package hetsort_test

// This file lives in the external test package: internal/check imports
// hetsort, so the in-package tests cannot import it back.

import (
	"testing"

	"hetsort/internal/check"
)

// TestCheckQuick is the tier-1 entry point of the cross-configuration
// harness: the PR-gate sweep (deterministic corner cases plus a small
// seeded random sample, crash/resume on a subset) must stay green.
// `go run ./cmd/hetcheck` runs the same sweep at larger budgets.
func TestCheckQuick(t *testing.T) {
	sum := check.Sweep(check.Options{
		Quick:    true,
		BaseSeed: 1,
		Scratch:  t.TempDir(),
	})
	if sum.Cases == 0 || sum.Runs == 0 {
		t.Fatalf("sweep ran %d cases / %d runs", sum.Cases, sum.Runs)
	}
	for _, f := range sum.Failures {
		t.Errorf("%s\n%s", f.String(), f.Repro)
	}
}

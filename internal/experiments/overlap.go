package experiments

import (
	"fmt"
	"time"

	"hetsort/internal/cluster"
	"hetsort/internal/diskio"
	"hetsort/internal/extsort"
	"hetsort/internal/record"
	"hetsort/internal/vtime"
)

// OverlapAblation runs A9: overlapped disk I/O (prefetch + write-behind)
// against the synchronous path on the paper's loaded cluster.  Two
// variants of the same uniform sort on perf {1,1,4,4}: synchronous
// (every block transfer stalls the node) and overlapped (reads are
// prefetched and writes drained behind concurrent compute, hiding disk
// time up to the window's buffering depth).  Reported per variant:
// virtual time, total PDM block I/Os, hidden (overlapped) disk seconds,
// and host wall-clock.  The ablation is self-checking — it fails unless
// the overlapped run's per-node outputs are byte-identical to the
// synchronous run's, its PDM block I/O count is exactly equal (overlap
// changes when transfers cost time, never how many happen), its virtual
// time is strictly lower, and every node's time attribution still sums
// to its clock.
func OverlapAblation(o Options) ([]AblationRow, error) {
	o = o.withDefaults()
	var rows []AblationRow
	add := func(variant, metric string, val float64) {
		rows = append(rows, AblationRow{ID: "A9", Variant: variant, Metric: metric, Value: val})
	}
	v := PaperVector
	n := v.NearestValidSize(o.scale(1 << 22))

	variants := []struct {
		name    string
		overlap bool
	}{
		{"synchronous", false},
		{"overlapped", true},
	}
	var reference [][]record.Key
	var syncIO, overlapIO int64
	var syncTime, overlapTime float64
	for _, vt := range variants {
		c, err := o.newCluster(cluster.FastEthernet())
		if err != nil {
			return nil, err
		}
		c.ResetClocks()
		sum, err := extsort.DistributeInput(c, v, record.Uniform, n, o.Seed, o.BlockKeys, "input")
		if err != nil {
			return nil, err
		}
		cfg := o.extsortConfig(v)
		cfg.Overlap = vt.overlap
		cfg.InputSum = sum
		start := time.Now()
		res, err := extsort.Sort(c, cfg, "input", "output")
		if err != nil {
			return nil, fmt.Errorf("A9 %s: %w", vt.name, err)
		}
		wall := time.Since(start)
		if err := extsort.VerifyOutput(c, "output", o.BlockKeys, sum); err != nil {
			return nil, fmt.Errorf("A9 %s verify: %w", vt.name, err)
		}
		var io int64
		var hidden float64
		for _, s := range res.NodeIO {
			io += s.Total()
		}
		for i, b := range res.NodeAttr {
			hidden += b.Overlapped
			if err := vtime.CheckAttribution(res.NodeClocks[i], b); err != nil {
				return nil, fmt.Errorf("A9 %s node %d: %w", vt.name, i, err)
			}
		}
		outs := make([][]record.Key, c.P())
		for i := range outs {
			if outs[i], err = diskio.ReadFileAll(c.Node(i).FS(), "output", o.BlockKeys, diskio.Accounting{}); err != nil {
				return nil, err
			}
		}
		switch vt.name {
		case "synchronous":
			reference = outs
			syncIO, syncTime = io, res.Time
		default:
			overlapIO, overlapTime = io, res.Time
			for i := range outs {
				if len(outs[i]) != len(reference[i]) {
					return nil, fmt.Errorf("A9 %s: node %d holds %d keys, synchronous run %d",
						vt.name, i, len(outs[i]), len(reference[i]))
				}
				for j := range outs[i] {
					if outs[i][j] != reference[i][j] {
						return nil, fmt.Errorf("A9 %s: node %d output diverges from the synchronous run at key %d",
							vt.name, i, j)
					}
				}
			}
		}
		add(vt.name, "vsec", res.Time)
		add(vt.name, "blockIOs", float64(io))
		add(vt.name, "hiddenDiskSec", hidden)
		add(vt.name, "wallms", float64(wall.Microseconds())/1000)
	}
	if overlapIO != syncIO {
		return nil, fmt.Errorf("A9: overlapped path did %d block I/Os, synchronous did %d — overlap must not change I/O counts",
			overlapIO, syncIO)
	}
	if overlapTime >= syncTime {
		return nil, fmt.Errorf("A9: overlapped run took %.3f virtual s, not strictly below the synchronous %.3f",
			overlapTime, syncTime)
	}
	return rows, nil
}

package sampling

import (
	"errors"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"hetsort/internal/perf"
	"hetsort/internal/record"
)

func TestRegularSampleIndices(t *testing.T) {
	// n=12, spacing=4 -> indices 3, 7 (11 would leave no full gap after).
	got := RegularSampleIndices(12, 4)
	want := []int64{3, 7}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestRegularSampleIndicesEdge(t *testing.T) {
	if RegularSampleIndices(0, 4) != nil {
		t.Error("n=0")
	}
	if RegularSampleIndices(10, 0) != nil {
		t.Error("spacing=0")
	}
	if got := RegularSampleIndices(4, 4); got != nil {
		t.Errorf("single gap should give no samples, got %v", got)
	}
}

func TestRegularSampleIndicesEqualGaps(t *testing.T) {
	// The defining property: equal element counts between consecutive
	// samples (and before the first).
	f := func(nRaw uint16, sRaw uint8) bool {
		n := int64(nRaw%10000) + 1
		spacing := int64(sRaw%100) + 1
		idx := RegularSampleIndices(n, spacing)
		prev := int64(-1)
		for _, i := range idx {
			if i-prev != spacing {
				return false
			}
			if i >= n {
				return false
			}
			prev = i
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeteroSpacingEqualAcrossNodes(t *testing.T) {
	// perf={1,1,4,4}, n=16777220: every node's spacing must equal
	// unit/p = 1677722/4 rounded the same way.
	v := perf.Vector{1, 1, 4, 4}
	shares := v.Shares(16777220)
	spacings := make([]int64, len(v))
	for i := range v {
		s, count, err := HeteroSpacing(i, shares[i], v[i], len(v))
		if err != nil {
			t.Fatal(err)
		}
		spacings[i] = s
		wantCount := v[i]*len(v) - 1
		if count != wantCount {
			t.Errorf("node %d: %d samples, want %d", i, count, wantCount)
		}
	}
	for i := 1; i < len(spacings); i++ {
		if spacings[i] != spacings[0] {
			t.Fatalf("spacings differ across nodes: %v", spacings)
		}
	}
}

func TestHeteroSpacingErrors(t *testing.T) {
	if _, _, err := HeteroSpacing(0, 10, 0, 4); err == nil {
		t.Error("perf=0 accepted")
	}
	if _, _, err := HeteroSpacing(0, 3, 1, 4); err == nil {
		t.Error("tiny portion accepted")
	}
}

func TestSpacingErrorStructured(t *testing.T) {
	// The large-p × small-portion regime: the error must be a typed
	// *SpacingError naming node, portion, perf and p, so callers can
	// both branch on it and report it usefully.
	_, _, err := HeteroSpacing(937, 500, 2, 1024)
	if err == nil {
		t.Fatal("500-key portion accepted at p=1024")
	}
	var se *SpacingError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not a *SpacingError", err)
	}
	if se.Node != 937 || se.Portion != 500 || se.Perf != 2 || se.P != 1024 {
		t.Fatalf("fields %+v do not round-trip the call site", se)
	}
	for _, want := range []string{"node 937", "portion 500", "2*1024"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q missing %q", err, want)
		}
	}
}

func TestRegularSamplesValues(t *testing.T) {
	sorted := []record.Key{0, 10, 20, 30, 40, 50, 60, 70}
	got := RegularSamples(sorted, 3)
	// indices 2, 5 -> 20, 50 (8-3-... idx 2 then 5; next would be 8, out)
	if len(got) != 2 || got[0] != 20 || got[1] != 50 {
		t.Fatalf("samples=%v", got)
	}
}

func TestSelectPivots(t *testing.T) {
	cands := []record.Key{90, 10, 50, 30, 70, 20, 80, 40, 60, 100, 0, 55}
	pv, err := SelectPivots(cands, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(pv) != 3 {
		t.Fatalf("pivots=%v", pv)
	}
	if !record.IsSorted(pv) {
		t.Fatal("pivots must come out sorted")
	}
	// With T=12 candidates from p=4 (each node contributing p-1=3 at
	// equal gaps), pivot j sits at rank j*(T+p)/p - 1: indices 3, 7, 11.
	sorted := append([]record.Key(nil), cands...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for j, want := range []record.Key{sorted[3], sorted[7], sorted[11]} {
		if pv[j] != want {
			t.Fatalf("pivot %d=%d want %d", j, pv[j], want)
		}
	}
}

func TestSelectPivotsEdge(t *testing.T) {
	if pv, err := SelectPivots([]record.Key{1}, 1); err != nil || pv != nil {
		t.Error("p=1 should give no pivots")
	}
	// Fewer candidates than pivots degrades gracefully (repeated picks).
	if pv, err := SelectPivots([]record.Key{7}, 3); err != nil || len(pv) != 2 {
		t.Errorf("tiny candidate set: %v, %v", pv, err)
	}
	// No candidates at all: zero pivots route everything to the last node.
	if pv, err := SelectPivots(nil, 3); err != nil || len(pv) != 2 || pv[0] != 0 {
		t.Errorf("empty candidate set: %v, %v", pv, err)
	}
	if _, err := SelectPivots(nil, 0); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestSelectPivotsDoesNotMutateInput(t *testing.T) {
	cands := []record.Key{3, 1, 2}
	if _, err := SelectPivots(cands, 2); err != nil {
		t.Fatal(err)
	}
	if cands[0] != 3 || cands[1] != 1 || cands[2] != 2 {
		t.Fatal("candidates were mutated")
	}
}

func TestRandomSampleIndices(t *testing.T) {
	idx := RandomSampleIndices(1000, 50, 7)
	if len(idx) != 50 {
		t.Fatalf("count=%d", len(idx))
	}
	seen := map[int64]bool{}
	for i, v := range idx {
		if v < 0 || v >= 1000 {
			t.Fatalf("index %d out of range", v)
		}
		if seen[v] {
			t.Fatal("duplicate index")
		}
		seen[v] = true
		if i > 0 && idx[i-1] > v {
			t.Fatal("indices not sorted")
		}
	}
	// Deterministic for a seed.
	idx2 := RandomSampleIndices(1000, 50, 7)
	for i := range idx {
		if idx[i] != idx2[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestRandomSampleIndicesClamp(t *testing.T) {
	if got := RandomSampleIndices(3, 10, 1); len(got) != 3 {
		t.Fatalf("should clamp to n, got %d", len(got))
	}
	if RandomSampleIndices(0, 5, 1) != nil || RandomSampleIndices(5, 0, 1) != nil {
		t.Fatal("degenerate inputs")
	}
}

func TestBoundariesAndSegments(t *testing.T) {
	sorted := []record.Key{1, 2, 2, 3, 5, 5, 5, 9}
	cuts := Boundaries(sorted, []record.Key{2, 5})
	// keys <= 2 -> first 3; keys <= 5 -> first 7.
	if cuts[0] != 3 || cuts[1] != 7 {
		t.Fatalf("cuts=%v", cuts)
	}
	sizes := SegmentSizes(cuts, len(sorted))
	want := []int64{3, 4, 1}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("sizes=%v want %v", sizes, want)
		}
	}
}

func TestBoundariesExtremes(t *testing.T) {
	sorted := []record.Key{5, 6, 7}
	cuts := Boundaries(sorted, []record.Key{0, 100})
	if cuts[0] != 0 || cuts[1] != 3 {
		t.Fatalf("cuts=%v", cuts)
	}
	sizes := SegmentSizes(cuts, 3)
	if sizes[0] != 0 || sizes[1] != 3 || sizes[2] != 0 {
		t.Fatalf("sizes=%v", sizes)
	}
}

func TestSegmentSizesSumProperty(t *testing.T) {
	f := func(keys []record.Key, pivotsRaw []record.Key) bool {
		sorted := append([]record.Key(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		pivots := append([]record.Key(nil), pivotsRaw...)
		sort.Slice(pivots, func(i, j int) bool { return pivots[i] < pivots[j] })
		cuts := Boundaries(sorted, pivots)
		sizes := SegmentSizes(cuts, len(sorted))
		var sum int64
		for _, s := range sizes {
			if s < 0 {
				return false
			}
			sum += s
		}
		return sum == int64(len(sorted))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSublistExpansion(t *testing.T) {
	if got := SublistExpansion([]int64{4, 4, 4, 4}); got != 1.0 {
		t.Fatalf("perfect balance expansion=%v", got)
	}
	if got := SublistExpansion([]int64{8, 0, 0, 0}); got != 4.0 {
		t.Fatalf("worst expansion=%v", got)
	}
	if got := SublistExpansion(nil); got != 0 {
		t.Fatalf("empty expansion=%v", got)
	}
	if got := SublistExpansion([]int64{0, 0}); got != 0 {
		t.Fatalf("zero expansion=%v", got)
	}
}

func TestWeightedExpansion(t *testing.T) {
	v := perf.Vector{1, 1, 4, 4}
	// Perfectly proportional loads -> 1.0.
	got, err := WeightedExpansion([]int64{100, 100, 400, 400}, v)
	if err != nil || got != 1.0 {
		t.Fatalf("got %v, %v", got, err)
	}
	// A fast node with double its share -> 2.0.
	got, err = WeightedExpansion([]int64{100, 100, 800, 0}, v)
	if err != nil || got != 2.0 {
		t.Fatalf("got %v, %v", got, err)
	}
	if _, err := WeightedExpansion([]int64{1}, v); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestTheoreticalBound(t *testing.T) {
	v := perf.Vector{1, 1}
	if got := TheoreticalBound(100, v, 0, 0); got != 100 {
		t.Fatalf("bound=%v want 100 (2*50)", got)
	}
	if got := TheoreticalBound(100, v, 0, 7); got != 107 {
		t.Fatalf("bound with duplicates=%v want 107", got)
	}
}

func TestOverpartitionPivots(t *testing.T) {
	cands := record.Uniform.Generate(100, 3, 1)
	pv, err := OverpartitionPivots(cands, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pv) != 11 { // k*p-1
		t.Fatalf("pivot count=%d", len(pv))
	}
	if !record.IsSorted(pv) {
		t.Fatal("pivots unsorted")
	}
	if _, err := OverpartitionPivots(cands, 0, 3); err == nil {
		t.Fatal("p=0 accepted")
	}
}

func TestAssignSublistsCoversAllOnce(t *testing.T) {
	sizes := []int64{5, 9, 2, 7, 7, 1, 3, 8, 4, 6, 2, 5}
	v := perf.Vector{1, 2, 1}
	assign, err := AssignSublists(sizes, v)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(sizes))
	prevEnd := 0
	for i, idxs := range assign {
		for _, j := range idxs {
			if seen[j] {
				t.Fatalf("sublist %d assigned twice", j)
			}
			seen[j] = true
			if j < prevEnd {
				t.Fatalf("processor %d got non-consecutive sublist %d", i, j)
			}
		}
		prevEnd += len(idxs)
	}
	for j, s := range seen {
		if !s {
			t.Fatalf("sublist %d unassigned", j)
		}
	}
}

func TestAssignSublistsRespectsSpeed(t *testing.T) {
	sizes := make([]int64, 40)
	for i := range sizes {
		sizes[i] = 10
	}
	v := perf.Vector{1, 3}
	assign, err := AssignSublists(sizes, v)
	if err != nil {
		t.Fatal(err)
	}
	loads := LoadsOf(assign, sizes)
	if loads[1] <= loads[0] {
		t.Fatalf("fast node should carry more: %v", loads)
	}
	ratio := float64(loads[1]) / float64(loads[0])
	if ratio < 2 || ratio > 4.5 {
		t.Fatalf("load ratio %v far from speed ratio 3", ratio)
	}
}

func TestAssignSublistsErrors(t *testing.T) {
	if _, err := AssignSublists([]int64{1}, perf.Vector{1, 1}); err == nil {
		t.Fatal("fewer sublists than processors accepted")
	}
	if _, err := AssignSublists([]int64{1, 2}, perf.Vector{0, 1}); err == nil {
		t.Fatal("invalid vector accepted")
	}
}

func TestSelectPivotsRegularHomogeneousMatchesWeighted(t *testing.T) {
	// On homogeneous vectors (targets on-grid) the two selectors agree.
	cands := record.Uniform.Generate(12, 3, 1)
	v := perf.Homogeneous(4)
	a, err := SelectPivotsRegular(cands, v)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectPivotsWeighted(cands, v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("regular %v != weighted %v", a, b)
		}
	}
}

func TestSelectPivotsRegularFastBias(t *testing.T) {
	// {1,1,4,4}: the target quantile 0.1 is off-grid; the regular
	// selector must choose the lower grid point 1/16 (candidate rank
	// 2, 0-based index 1), under-filling the slow nodes like the paper.
	v := perf.Vector{1, 1, 4, 4}
	// Synthesise the exact regular-sampling candidate multiset over a
	// uniform [0, 160) key space: node grids 1/4 (x2) and 1/16 (x2).
	var cands []record.Key
	for _, pf := range v {
		g := 4 * pf
		for k := 1; k < g; k++ {
			cands = append(cands, record.Key(k*160/g))
		}
	}
	pivots, err := SelectPivotsRegular(cands, v)
	if err != nil {
		t.Fatal(err)
	}
	// q*=0.1 -> lower grid 1/16 -> key 10; q*=0.2 -> 3/16 -> key 30;
	// q*=0.6 -> 9/16 -> key 90.
	want := []record.Key{10, 30, 90}
	for i := range want {
		if pivots[i] != want[i] {
			t.Fatalf("pivots=%v want %v", pivots, want)
		}
	}
}

func TestSelectPivotsRegularDegenerate(t *testing.T) {
	v := perf.Vector{1, 2}
	if pv, err := SelectPivotsRegular(nil, v); err != nil || len(pv) != 1 {
		t.Fatalf("empty candidates: %v %v", pv, err)
	}
	if _, err := SelectPivotsRegular([]record.Key{1}, perf.Vector{0}); err == nil {
		t.Fatal("invalid vector accepted")
	}
	if pv, err := SelectPivotsRegular([]record.Key{5}, perf.Vector{3}); err != nil || pv != nil {
		t.Fatalf("p=1: %v %v", pv, err)
	}
}

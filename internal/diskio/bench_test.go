package diskio

import (
	"io"
	"testing"

	"hetsort/internal/pdm"
	"hetsort/internal/record"
)

func BenchmarkWriterThroughput(b *testing.B) {
	keys := record.Uniform.Generate(1<<16, 1, 1)
	b.SetBytes(int64(len(keys)) * record.KeySize)
	fs := NewMemFS()
	var c pdm.Counter
	for i := 0; i < b.N; i++ {
		f, err := fs.Create("bench")
		if err != nil {
			b.Fatal(err)
		}
		w := NewWriter(f, 2048, Accounting{Counter: &c})
		if err := w.WriteKeys(keys); err != nil {
			b.Fatal(err)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
		f.Close()
	}
}

func BenchmarkReaderThroughput(b *testing.B) {
	keys := record.Uniform.Generate(1<<16, 1, 1)
	fs := NewMemFS()
	if err := WriteFile(fs, "bench", keys, 2048, Accounting{}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(keys)) * record.KeySize)
	buf := make([]record.Key, 2048)
	for i := 0; i < b.N; i++ {
		f, err := fs.Open("bench")
		if err != nil {
			b.Fatal(err)
		}
		r := NewReader(f, 2048, Accounting{})
		for {
			n, err := r.ReadKeys(buf)
			if err == io.EOF || n == 0 {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
		}
		f.Close()
	}
}

func BenchmarkReadKeyAt(b *testing.B) {
	keys := record.Uniform.Generate(1<<16, 1, 1)
	fs := NewMemFS()
	if err := WriteFile(fs, "bench", keys, 2048, Accounting{}); err != nil {
		b.Fatal(err)
	}
	f, err := fs.Open("bench")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadKeyAt(f, int64(i%(1<<16)), Accounting{}); err != nil {
			b.Fatal(err)
		}
	}
}

package main

import (
	"encoding/json"
	"errors"
	"testing"

	"hetsort"
)

func TestResultJSONFailure(t *testing.T) {
	out := resultJSON(nil, errors.New("input file truncated"), "")
	var r cliResult
	if err := json.Unmarshal(out, &r); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out)
	}
	if r.OK || r.Error != "input file truncated" || r.Crash {
		t.Fatalf("failure object: %+v", r)
	}
}

func TestResultJSONCrashCarriesResumeHint(t *testing.T) {
	// A genuine injected crash from a checkpointed run must be marked
	// recoverable, with the exact resume command.
	_, _, err := hetsort.Sort(make([]hetsort.Key, 2000), hetsort.Config{
		MemoryKeys: 1024, Tapes: 4, BlockKeys: 64, MessageKeys: 128,
		Checkpoint: hetsort.CheckpointConfig{Enabled: true, CrashNode: 1, CrashPhase: 3},
	})
	if err == nil || !hetsort.IsCrash(err) {
		t.Fatalf("expected injected crash, got %v", err)
	}
	var r cliResult
	if uerr := json.Unmarshal(resultJSON(nil, err, "/ckpt"), &r); uerr != nil {
		t.Fatal(uerr)
	}
	if r.OK || !r.Crash || r.ResumeHint != "hetsort -resume -checkpoint-dir /ckpt" {
		t.Fatalf("crash object: %+v", r)
	}
}

func TestResultJSONSuccess(t *testing.T) {
	keys := make([]hetsort.Key, 2000)
	for i := range keys {
		keys[i] = hetsort.Key(len(keys) - i)
	}
	_, rep, err := hetsort.Sort(keys, hetsort.Config{
		MemoryKeys: 1024, Tapes: 4, BlockKeys: 64, MessageKeys: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	var r cliResult
	if uerr := json.Unmarshal(resultJSON(rep, nil, ""), &r); uerr != nil {
		t.Fatal(uerr)
	}
	if !r.OK || r.Error != "" || r.Time != rep.Time || len(r.Partitions) != 4 {
		t.Fatalf("success object: %+v", r)
	}
}

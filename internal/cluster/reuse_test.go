package cluster

import (
	"errors"
	"strings"
	"testing"

	"hetsort/internal/record"
	"hetsort/internal/trace"
)

// TestClusterReusableAfterFailure checks that a run which aborted with
// in-flight messages leaves the cluster usable: the next Run drains the
// stale links.
func TestClusterReusableAfterFailure(t *testing.T) {
	c := mustNew(t, 1, 1)
	boom := errors.New("boom")
	err := c.Run(func(n *Node) error {
		if n.ID() == 0 {
			// Leave a stale message in flight, then fail.
			if err := n.Send(1, 5, []record.Key{1}); err != nil {
				return err
			}
			return boom
		}
		// Node 1 returns without receiving.
		return nil
	})
	if err == nil {
		t.Fatal("first run should fail")
	}
	c.ResetClocks()
	err = c.Run(func(n *Node) error {
		if n.ID() == 0 {
			return n.Send(1, 9, []record.Key{42})
		}
		got, rerr := n.Recv(0, 9)
		if rerr != nil {
			return rerr
		}
		if len(got) != 1 || got[0] != 42 {
			t.Errorf("stale message leaked into second run: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
}

func TestAbortUnblocksWaitingPeer(t *testing.T) {
	c := mustNew(t, 1, 1)
	boom := errors.New("boom")
	err := c.Run(func(n *Node) error {
		if n.ID() == 0 {
			return boom // never sends
		}
		_, rerr := n.Recv(0, 1) // would block forever without abort
		return rerr
	})
	if err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("want abort error, got %v", err)
	}
}

func TestAbortUnblocksBarrier(t *testing.T) {
	c := mustNew(t, 1, 1, 1)
	boom := errors.New("boom")
	err := c.Run(func(n *Node) error {
		if n.ID() == 2 {
			return boom
		}
		return n.Barrier(50)
	})
	if err == nil {
		t.Fatal("expected joined errors")
	}
}

func TestEightNodeCollectives(t *testing.T) {
	slow := make([]float64, 8)
	for i := range slow {
		slow[i] = float64(i%4 + 1)
	}
	c, err := New(Config{Slowdowns: slow})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(n *Node) error {
		all, err := n.AllGather(3, []record.Key{record.Key(n.ID() * n.ID())})
		if err != nil {
			return err
		}
		if len(all) != 8 {
			t.Errorf("allgather len %d", len(all))
		}
		for i, v := range all {
			if v != record.Key(i*i) {
				t.Errorf("allgather[%d]=%d", i, v)
			}
		}
		return n.Barrier(10)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTracePhaseAndMark(t *testing.T) {
	tl := new(trace.Log)
	c, err := New(Config{Slowdowns: []float64{1}, Trace: tl})
	if err != nil {
		t.Fatal(err)
	}
	c.Run(func(n *Node) error {
		end := n.TracePhase("work")
		n.AdvanceClock(2)
		end()
		n.TraceMark("checkpoint", "detail")
		return nil
	})
	spans := tl.Spans()
	if len(spans) != 1 || spans[0].Duration() != 2 {
		t.Fatalf("spans %v", spans)
	}
	if !strings.Contains(tl.Timeline(), "checkpoint") {
		t.Fatal("mark missing")
	}
}

func TestTraceNilIsFree(t *testing.T) {
	c := mustNew(t, 1)
	err := c.Run(func(n *Node) error {
		end := n.TracePhase("x") // must not panic
		end()
		n.TraceMark("y", "z")
		return n.Send(0, 1, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTraceRecordsMessages(t *testing.T) {
	tl := new(trace.Log)
	c, err := New(Config{Slowdowns: []float64{1, 1}, Trace: tl})
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(func(n *Node) error {
		if n.ID() == 0 {
			return n.Send(1, 7, []record.Key{1, 2})
		}
		_, rerr := n.Recv(0, 7)
		return rerr
	})
	if err != nil {
		t.Fatal(err)
	}
	var sends, recvs int
	for _, e := range tl.Events() {
		switch e.Kind {
		case trace.MessageSent:
			sends++
			if !strings.Contains(e.Detail, "keys:2") {
				t.Errorf("send detail %q", e.Detail)
			}
		case trace.MessageReceived:
			recvs++
		}
	}
	if sends != 1 || recvs != 1 {
		t.Fatalf("sends=%d recvs=%d", sends, recvs)
	}
}
